// Package isa defines the instruction set of the simulated instruction-driven
// CNN accelerator, both the original ISA (LOAD_W / LOAD_D / CALC_I / CALC_F /
// SAVE, Table 1 of the paper) and the Virtual-Instruction extension
// (Vir_SAVE / Vir_LOAD_D) that makes a compiled stream interruptible.
//
// A Program couples the instruction stream with a layer table carrying the
// geometry the execution engine needs for cycle-accurate timing and for
// functional (bit-exact) execution. Programs serialize to the
// `instruction.bin` format via Encode/Decode.
package isa

import "fmt"

// Op is an instruction opcode.
type Op uint8

// Opcodes. The first five form the original ISA; VirSave/VirLoadD are the
// virtual instructions added by the INCA compiler; End terminates a stream.
const (
	OpLoadW Op = iota
	OpLoadD
	OpCalcI
	OpCalcF
	OpSave
	OpVirSave
	OpVirLoadD
	OpEnd
	numOps
)

func (o Op) String() string {
	switch o {
	case OpLoadW:
		return "LOAD_W"
	case OpLoadD:
		return "LOAD_D"
	case OpCalcI:
		return "CALC_I"
	case OpCalcF:
		return "CALC_F"
	case OpSave:
		return "SAVE"
	case OpVirSave:
		return "Vir_SAVE"
	case OpVirLoadD:
		return "Vir_LOAD_D"
	case OpEnd:
		return "END"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Virtual reports whether the opcode is a virtual instruction: skipped by the
// IAU in normal flow, materialised only around an interrupt.
func (o Op) Virtual() bool { return o == OpVirSave || o == OpVirLoadD }

// Instruction is one fixed-width instruction record.
//
// Field meaning by opcode:
//
//	LOAD_W    Layer, OutG (out-channel group whose weights are loaded),
//	          Addr/Len (weight bytes incl. bias words in DDR).
//	LOAD_D    Layer, Which (0 = primary input, 1 = residual input),
//	          Row0/Rows (input featuremap rows fetched, all channels),
//	          Addr/Len. Delta loads fetch only rows not already resident.
//	CALC_I/F  Layer, InG, OutG, Row0/Rows (OUTPUT rows of the tile).
//	SAVE      Layer, Row0/Rows (output rows), SaveID, Addr/Len. Covers the
//	          out-channel groups [InG, OutG] (inclusive) of the tile — the
//	          compiler may emit one SAVE per CalcBlob, per few blobs, or per
//	          tile (BlobsPerSave).
//	Vir_SAVE  Like SAVE, but covers only the save window's groups finished
//	          when the preceding CALC_F retired ([InG, OutG]); executed only
//	          when an interrupt is taken here.
//	Vir_LOAD_D Like LOAD_D; restores the input-row window a resumed task
//	          needs (full window after CALC_F, forward overlap after SAVE).
//	END       stream terminator.
type Instruction struct {
	Op     Op
	Which  uint8  // LOAD_D input selector (0 primary, 1 residual)
	Layer  uint16 // index into Program.Layers
	InG    uint16 // input-channel group index
	OutG   uint16 // output-channel group index
	Row0   uint16 // first row of the affected row range
	Rows   uint16 // number of rows (0 ⇒ no-op transfer)
	Tile   uint16 // height-tile ordinal within the layer
	Bat    uint16 // batch element the instruction operates on (0 for LOAD_W)
	SaveID uint32 // correlates Vir_SAVE with the SAVE it pre-empts
	Addr   uint32 // DDR byte address (task-relative)
	Len    uint32 // transfer length in bytes
}

func (in Instruction) String() string {
	bat := ""
	if in.Bat > 0 {
		bat = fmt.Sprintf(" b%d", in.Bat)
	}
	switch in.Op {
	case OpLoadW:
		return fmt.Sprintf("%s l%d og%d addr=%d len=%d", in.Op, in.Layer, in.OutG, in.Addr, in.Len)
	case OpLoadD, OpVirLoadD:
		return fmt.Sprintf("%s l%d%s in%d rows[%d+%d) len=%d", in.Op, in.Layer, bat, in.Which, in.Row0, in.Rows, in.Len)
	case OpCalcI, OpCalcF:
		return fmt.Sprintf("%s l%d%s ig%d og%d tile%d rows[%d+%d)", in.Op, in.Layer, bat, in.InG, in.OutG, in.Tile, in.Row0, in.Rows)
	case OpSave, OpVirSave:
		return fmt.Sprintf("%s l%d%s tile%d rows[%d+%d) save=%d len=%d", in.Op, in.Layer, bat, in.Tile, in.Row0, in.Rows, in.SaveID, in.Len)
	default:
		return in.Op.String()
	}
}

// LayerOp distinguishes how the engine executes a layer's CALC instructions.
type LayerOp uint8

// Layer operation classes the accelerator executes.
const (
	LayerConv LayerOp = iota // dense or grouped/depthwise convolution
	LayerPool                // max pooling
	LayerAdd                 // element-wise residual addition
)

func (k LayerOp) String() string {
	switch k {
	case LayerConv:
		return "conv"
	case LayerPool:
		return "pool"
	case LayerAdd:
		return "add"
	default:
		return fmt.Sprintf("LayerOp(%d)", uint8(k))
	}
}

// LayerInfo is one row of a program's layer table: everything the engine
// needs to time and (optionally) functionally execute the layer's
// instructions.
type LayerInfo struct {
	Op   LayerOp
	Name string

	InC, InH, InW    int
	OutC, OutH, OutW int
	KH, KW           int
	Stride, Pad      int
	Groups           int // 1 dense; InC depthwise

	Shift uint8 // arithmetic right shift applied at requantization
	ReLU  bool

	// FusedPool, when >1, max-pools the conv output with this window/stride
	// during SAVE (OutH/OutW already reflect the pooled size).
	FusedPool int

	// FusedAdd, on a conv layer, folds a following residual Add into the
	// requantize pass: each output pixel becomes
	// SaturateAdd(Requantize(acc), residual>>AddShift, AddReLU), with the
	// residual featuremap (same OutC/OutH/OutW geometry) streamed from
	// In2Addr via Which=1 LOAD_D. The Add layer itself is deleted from the
	// program, eliminating its DDR round-trip.
	FusedAdd bool
	// AddShift is the arithmetic right shift applied to the residual operand
	// before the saturating add (the deleted Add layer's Shift).
	AddShift uint8
	// AddReLU applies ReLU after the fused residual addition.
	AddReLU bool

	// DDR layout (task-relative byte addresses).
	InAddr  uint32 // input featuremap region (int8, CHW)
	In2Addr uint32 // second input for LayerAdd
	OutAddr uint32 // output featuremap region (int8, CHW)
	WAddr   uint32 // weights region base (int8 tiles + int32 biases)

	// Tiling (derived from the parallelism the program was compiled for).
	NIn    int // ceil(effInC / ParaIn) input-channel groups
	NOut   int // ceil(OutC / ParaOut) output-channel groups
	NTiles int // ceil(OutH / ParaHeight) height tiles
}

// ConvRows maps an output-row range to the convolution-row range that
// computes it (identity unless pooling is fused into the layer).
func (l *LayerInfo) ConvRows(row0, rows int) (c0, cn int) {
	if l.FusedPool > 1 {
		return row0 * l.FusedPool, rows * l.FusedPool
	}
	return row0, rows
}

// ConvW returns the layer's convolution output width (pre-fused-pool).
func (l *LayerInfo) ConvW() int {
	if l.FusedPool > 1 {
		return l.OutW * l.FusedPool
	}
	return l.OutW
}

// InPlane returns the byte size of one batch element's input featuremap.
func (l *LayerInfo) InPlane() int { return l.InC * l.InH * l.InW }

// OutPlane returns the byte size of one batch element's output featuremap.
func (l *LayerInfo) OutPlane() int { return l.OutC * l.OutH * l.OutW }

// Program is a compiled, loadable instruction stream plus its layer table.
type Program struct {
	Name string

	// Parallelism the stream was scheduled for.
	ParaIn, ParaOut, ParaHeight int

	// Batch is the number of input planes the stream processes per run
	// (0 and 1 both mean a single-image plan). Every featuremap region in
	// the arena holds Batch consecutive planes; weights are shared, so each
	// LOAD_W is issued once and amortized across the whole batch.
	Batch int

	Layers []LayerInfo
	Instrs []Instruction

	// DDRBytes is the size of the task's DDR arena (featuremaps + weights).
	DDRBytes uint32

	// ResponseBound is the compiler-proven worst-case preemption-response
	// latency of the stream in accelerator cycles: from any stream position,
	// the modeled cycles until the task reaches its next interrupt point and
	// finishes the backup there (or runs to END and yields), assuming
	// fault-free execution under the VI method. 0 means the bound was not
	// modeled (no cost model at compile time). For uninterruptible streams
	// (no virtual instructions) it is the modeled solo completion time.
	ResponseBound uint64

	// Weights is the weight image to place at its layers' WAddr regions when
	// running functionally. Empty for timing-only programs.
	Weights []int8
	// WeightsAddr is the base address of the weight image.
	WeightsAddr uint32

	// InputAddr/InputBytes locate the network input featuremap in the arena.
	InputAddr  uint32
	InputBytes uint32
	// OutputAddr/OutputBytes locate the final output featuremap.
	OutputAddr  uint32
	OutputBytes uint32
}

// BatchN returns the effective batch size of the program (at least 1).
func (p *Program) BatchN() int {
	if p.Batch < 1 {
		return 1
	}
	return p.Batch
}

// Validate performs structural checks on the program: opcode validity, layer
// references, row ranges, batch bounds, and stream termination.
func (p *Program) Validate() error {
	if p.ParaIn <= 0 || p.ParaOut <= 0 || p.ParaHeight <= 0 {
		return fmt.Errorf("isa: program %q has invalid parallelism (%d,%d,%d)", p.Name, p.ParaIn, p.ParaOut, p.ParaHeight)
	}
	if len(p.Instrs) == 0 || p.Instrs[len(p.Instrs)-1].Op != OpEnd {
		return fmt.Errorf("isa: program %q does not end with END", p.Name)
	}
	for i, in := range p.Instrs {
		if in.Op >= numOps {
			return fmt.Errorf("isa: program %q instr %d has invalid opcode %d", p.Name, i, in.Op)
		}
		if in.Op == OpEnd {
			if i != len(p.Instrs)-1 {
				return fmt.Errorf("isa: program %q has END at %d before stream end", p.Name, i)
			}
			continue
		}
		if int(in.Layer) >= len(p.Layers) {
			return fmt.Errorf("isa: program %q instr %d references layer %d of %d", p.Name, i, in.Layer, len(p.Layers))
		}
		if int(in.Bat) >= p.BatchN() {
			return fmt.Errorf("isa: program %q instr %d batch %d out of range [0,%d)", p.Name, i, in.Bat, p.BatchN())
		}
		l := &p.Layers[in.Layer]
		switch in.Op {
		case OpCalcI, OpCalcF, OpSave, OpVirSave:
			if int(in.Row0)+int(in.Rows) > l.OutH {
				return fmt.Errorf("isa: program %q instr %d rows [%d,%d) exceed OutH=%d", p.Name, i, in.Row0, int(in.Row0)+int(in.Rows), l.OutH)
			}
		case OpLoadD, OpVirLoadD:
			if l.FusedAdd && in.Which == 1 {
				// The residual operand of a fused Add has the conv's OUTPUT
				// geometry, not its input geometry.
				if int(in.Row0)+int(in.Rows) > l.OutH {
					return fmt.Errorf("isa: program %q instr %d residual rows [%d,%d) exceed OutH=%d", p.Name, i, in.Row0, int(in.Row0)+int(in.Rows), l.OutH)
				}
			} else if int(in.Row0)+int(in.Rows) > l.InH {
				return fmt.Errorf("isa: program %q instr %d rows [%d,%d) exceed InH=%d", p.Name, i, in.Row0, int(in.Row0)+int(in.Rows), l.InH)
			}
		}
	}
	return nil
}

// StripVirtual returns a copy of the instruction stream with every virtual
// instruction removed — i.e. the original-ISA stream the IAU feeds the
// accelerator when no interrupt occurs.
func (p *Program) StripVirtual() []Instruction {
	out := make([]Instruction, 0, len(p.Instrs))
	for _, in := range p.Instrs {
		if !in.Op.Virtual() {
			out = append(out, in)
		}
	}
	return out
}

// CountOps tallies instructions per opcode.
func (p *Program) CountOps() map[Op]int {
	m := make(map[Op]int, int(numOps))
	for _, in := range p.Instrs {
		m[in.Op]++
	}
	return m
}

// InterruptPoints returns the indices of instructions at which the VI method
// may take an interrupt: every virtual instruction that begins a
// backup/restore group (a Vir_SAVE, or a lone Vir_LOAD_D following a SAVE).
func (p *Program) InterruptPoints() []int {
	var pts []int
	for i, in := range p.Instrs {
		switch in.Op {
		case OpVirSave:
			pts = append(pts, i)
		case OpVirLoadD:
			// Only the leader of a restore group is a take-point: a
			// Vir_LOAD_D after a Vir_SAVE belongs to that backup's group, and
			// one after another Vir_LOAD_D (Add layers restore two inputs) is
			// mid-group — parking there would skip the earlier restores.
			if i == 0 || (p.Instrs[i-1].Op != OpVirSave && p.Instrs[i-1].Op != OpVirLoadD) {
				pts = append(pts, i)
			}
		}
	}
	return pts
}

// LayerBoundaries returns the indices of the first instruction of each layer
// (the positions at which the layer-by-layer method may switch).
func (p *Program) LayerBoundaries() []int {
	var pts []int
	last := -1
	for i, in := range p.Instrs {
		if in.Op == OpEnd {
			break
		}
		if int(in.Layer) != last {
			pts = append(pts, i)
			last = int(in.Layer)
		}
	}
	return pts
}
