package isa

import "fmt"

// Relocate returns a copy of the program with every DDR address shifted by
// base. This models the IAU's per-slot InputOffset/OutputOffset registers
// (Fig. 3): instruction streams are compiled position-independent within a
// task-relative address space, and software places each task's data at a
// base offset in the shared DDR. Relocating lets several tasks coexist in
// one physical address space without recompilation.
func Relocate(p *Program, base uint32) (*Program, error) {
	if base%uint32(regionAlign) != 0 {
		return nil, fmt.Errorf("isa: relocation base %d not %d-byte aligned", base, regionAlign)
	}
	if uint64(base)+uint64(p.DDRBytes) > (1 << 32) {
		return nil, fmt.Errorf("isa: relocation base %d overflows the 32-bit address space (arena %d bytes)", base, p.DDRBytes)
	}
	q := &Program{
		Name:        p.Name,
		ParaIn:      p.ParaIn,
		ParaOut:     p.ParaOut,
		ParaHeight:  p.ParaHeight,
		Batch:       p.Batch,
		Layers:      make([]LayerInfo, len(p.Layers)),
		Instrs:      make([]Instruction, len(p.Instrs)),
		DDRBytes:    base + p.DDRBytes,
		Weights:     p.Weights,
		WeightsAddr: p.WeightsAddr + base,
		InputAddr:   p.InputAddr + base,
		InputBytes:  p.InputBytes,
		OutputAddr:  p.OutputAddr + base,
		OutputBytes: p.OutputBytes,
		// The proven response bound depends on transfer lengths and group
		// shapes, never on addresses, so relocation preserves it verbatim
		// (progcheck re-derives the same value at any slot base).
		ResponseBound: p.ResponseBound,
	}
	copy(q.Layers, p.Layers)
	for i := range q.Layers {
		l := &q.Layers[i]
		l.InAddr += base
		l.OutAddr += base
		if l.Op == LayerAdd || l.FusedAdd {
			l.In2Addr += base
		}
		if l.Op == LayerConv {
			l.WAddr += base
		}
	}
	copy(q.Instrs, p.Instrs)
	for i := range q.Instrs {
		in := &q.Instrs[i]
		switch in.Op {
		case OpLoadW, OpLoadD, OpSave, OpVirSave, OpVirLoadD:
			if in.Len > 0 || in.Addr > 0 {
				in.Addr += base
			}
		}
	}
	return q, nil
}

// regionAlign mirrors the compiler's DDR region alignment.
const regionAlign = 64

// Link packs several tasks' programs into one shared physical address
// space, relocating each to its own base offset — what system software does
// before configuring the IAU's per-slot offset registers. The returned
// programs all report the same DDRBytes (the full shared image) so a single
// arena serves every task.
func Link(progs []*Program) ([]*Program, uint32, error) {
	if len(progs) == 0 {
		return nil, 0, fmt.Errorf("isa: nothing to link")
	}
	var total uint32
	out := make([]*Program, len(progs))
	for i, p := range progs {
		r, err := Relocate(p, total)
		if err != nil {
			return nil, 0, fmt.Errorf("isa: linking %q at %d: %w", p.Name, total, err)
		}
		out[i] = r
		total += (p.DDRBytes + regionAlign - 1) &^ (regionAlign - 1)
	}
	for _, r := range out {
		r.DDRBytes = total
	}
	return out, total, nil
}

// BuildLinkedArena materialises the shared DDR image for linked programs,
// placing every task's weight image at its relocated base.
func BuildLinkedArena(progs []*Program) ([]byte, error) {
	if len(progs) == 0 {
		return nil, fmt.Errorf("isa: no programs")
	}
	size := progs[0].DDRBytes
	arena := make([]byte, size)
	for _, p := range progs {
		if p.DDRBytes != size {
			return nil, fmt.Errorf("isa: program %q arena %d != shared %d (not linked together?)", p.Name, p.DDRBytes, size)
		}
		if len(p.Weights) == 0 {
			return nil, fmt.Errorf("isa: program %q has no weight image", p.Name)
		}
		if int(p.WeightsAddr)+len(p.Weights) > len(arena) {
			return nil, fmt.Errorf("isa: program %q weights exceed the shared arena", p.Name)
		}
		for i, v := range p.Weights {
			arena[int(p.WeightsAddr)+i] = byte(v)
		}
	}
	return arena, nil
}
