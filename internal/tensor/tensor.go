// Package tensor provides small dense tensors in NCHW layout used by the
// CNN model, the quantizer, and the functional accelerator simulator.
//
// The accelerator datapath is integer-only: feature maps and weights are
// int8, accumulators are int32. Float32 tensors exist only on the "software"
// side (pre-quantization weights, post-processing on the CPU).
package tensor

import (
	"fmt"
	"math"
)

// Shape describes a tensor extent. The canonical activation layout is
// (C, H, W); weights use (OutC, InC, KH, KW). A Shape may have any rank
// from 1 to 4.
type Shape []int

// Elems returns the number of elements the shape spans.
func (s Shape) Elems() int {
	n := 1
	for _, d := range s {
		n *= d
	}
	return n
}

// Equal reports whether two shapes have identical rank and extents.
func (s Shape) Equal(o Shape) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the shape.
func (s Shape) Clone() Shape {
	c := make(Shape, len(s))
	copy(c, s)
	return c
}

func (s Shape) String() string {
	return fmt.Sprint([]int(s))
}

// Validate returns an error when any extent is non-positive or the rank is
// outside [1,4].
func (s Shape) Validate() error {
	if len(s) == 0 || len(s) > 4 {
		return fmt.Errorf("tensor: invalid rank %d", len(s))
	}
	for i, d := range s {
		if d <= 0 {
			return fmt.Errorf("tensor: non-positive extent %d at axis %d", d, i)
		}
	}
	return nil
}

// Int8 is a dense int8 tensor.
type Int8 struct {
	Shape Shape
	Data  []int8
}

// NewInt8 allocates a zeroed int8 tensor of the given shape.
func NewInt8(shape ...int) *Int8 {
	s := Shape(shape)
	return &Int8{Shape: s.Clone(), Data: make([]int8, s.Elems())}
}

// At3 reads element (c, y, x) of a CHW tensor.
func (t *Int8) At3(c, y, x int) int8 {
	_, h, w := t.Shape[0], t.Shape[1], t.Shape[2]
	return t.Data[(c*h+y)*w+x]
}

// Set3 writes element (c, y, x) of a CHW tensor.
func (t *Int8) Set3(c, y, x int, v int8) {
	_, h, w := t.Shape[0], t.Shape[1], t.Shape[2]
	t.Data[(c*h+y)*w+x] = v
}

// At4 reads element (o, i, ky, kx) of an OIHW weight tensor.
func (t *Int8) At4(o, i, ky, kx int) int8 {
	_, ic, kh, kw := t.Shape[0], t.Shape[1], t.Shape[2], t.Shape[3]
	return t.Data[((o*ic+i)*kh+ky)*kw+kx]
}

// Set4 writes element (o, i, ky, kx) of an OIHW weight tensor.
func (t *Int8) Set4(o, i, ky, kx int, v int8) {
	_, ic, kh, kw := t.Shape[0], t.Shape[1], t.Shape[2], t.Shape[3]
	t.Data[((o*ic+i)*kh+ky)*kw+kx] = v
}

// Clone deep-copies the tensor.
func (t *Int8) Clone() *Int8 {
	c := &Int8{Shape: t.Shape.Clone(), Data: make([]int8, len(t.Data))}
	copy(c.Data, t.Data)
	return c
}

// Equal reports element-wise equality including shape.
func (t *Int8) Equal(o *Int8) bool {
	if !t.Shape.Equal(o.Shape) {
		return false
	}
	for i := range t.Data {
		if t.Data[i] != o.Data[i] {
			return false
		}
	}
	return true
}

// Int32 is a dense int32 tensor (accumulators, biases).
type Int32 struct {
	Shape Shape
	Data  []int32
}

// NewInt32 allocates a zeroed int32 tensor of the given shape.
func NewInt32(shape ...int) *Int32 {
	s := Shape(shape)
	return &Int32{Shape: s.Clone(), Data: make([]int32, s.Elems())}
}

// At3 reads element (c, y, x) of a CHW tensor.
func (t *Int32) At3(c, y, x int) int32 {
	_, h, w := t.Shape[0], t.Shape[1], t.Shape[2]
	return t.Data[(c*h+y)*w+x]
}

// Set3 writes element (c, y, x) of a CHW tensor.
func (t *Int32) Set3(c, y, x int, v int32) {
	_, h, w := t.Shape[0], t.Shape[1], t.Shape[2]
	t.Data[(c*h+y)*w+x] = v
}

// Clone deep-copies the tensor.
func (t *Int32) Clone() *Int32 {
	c := &Int32{Shape: t.Shape.Clone(), Data: make([]int32, len(t.Data))}
	copy(c.Data, t.Data)
	return c
}

// Float32 is a dense float32 tensor for the software-side of the pipeline.
type Float32 struct {
	Shape Shape
	Data  []float32
}

// NewFloat32 allocates a zeroed float32 tensor of the given shape.
func NewFloat32(shape ...int) *Float32 {
	s := Shape(shape)
	return &Float32{Shape: s.Clone(), Data: make([]float32, s.Elems())}
}

// At3 reads element (c, y, x) of a CHW tensor.
func (t *Float32) At3(c, y, x int) float32 {
	_, h, w := t.Shape[0], t.Shape[1], t.Shape[2]
	return t.Data[(c*h+y)*w+x]
}

// Set3 writes element (c, y, x) of a CHW tensor.
func (t *Float32) Set3(c, y, x int, v float32) {
	_, h, w := t.Shape[0], t.Shape[1], t.Shape[2]
	t.Data[(c*h+y)*w+x] = v
}

// AbsMax returns the maximum absolute value in the tensor, or 0 for an
// all-zero tensor.
func (t *Float32) AbsMax() float32 {
	var m float32
	for _, v := range t.Data {
		a := float32(math.Abs(float64(v)))
		if a > m {
			m = a
		}
	}
	return m
}

// Clone deep-copies the tensor.
func (t *Float32) Clone() *Float32 {
	c := &Float32{Shape: t.Shape.Clone(), Data: make([]float32, len(t.Data))}
	copy(c.Data, t.Data)
	return c
}

// L2Norm returns the Euclidean norm of the tensor.
func (t *Float32) L2Norm() float64 {
	var s float64
	for _, v := range t.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// Dot returns the inner product of two equally-sized float tensors.
func Dot(a, b *Float32) (float64, error) {
	if len(a.Data) != len(b.Data) {
		return 0, fmt.Errorf("tensor: dot size mismatch %d vs %d", len(a.Data), len(b.Data))
	}
	var s float64
	for i := range a.Data {
		s += float64(a.Data[i]) * float64(b.Data[i])
	}
	return s, nil
}

// CosineSimilarity returns the cosine of the angle between two vectors; it
// returns 0 when either vector has zero norm.
func CosineSimilarity(a, b *Float32) (float64, error) {
	d, err := Dot(a, b)
	if err != nil {
		return 0, err
	}
	na, nb := a.L2Norm(), b.L2Norm()
	if na == 0 || nb == 0 {
		return 0, nil
	}
	return d / (na * nb), nil
}

// FillPattern fills an int8 tensor with a deterministic pseudo-random but
// reproducible pattern derived from seed. It is used to generate synthetic
// weights and inputs: the accelerator experiments depend on shapes, not on
// learned values, but the functional engine still needs real data to prove
// bit-exactness across preemption.
func FillPattern(t *Int8, seed uint64) {
	s := splitmix(seed)
	for i := range t.Data {
		s = splitmix(s)
		t.Data[i] = int8(s >> 32) // full int8 range
	}
}

// FillPatternFloat32 fills a float tensor with reproducible values in
// [-1, 1).
func FillPatternFloat32(t *Float32, seed uint64) {
	s := splitmix(seed)
	for i := range t.Data {
		s = splitmix(s)
		t.Data[i] = float32(int32(s>>32)) / float32(math.MaxInt32)
	}
}

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
