package tensor_test

import (
	"math"
	"testing"
	"testing/quick"

	"inca/internal/tensor"
)

func TestShapeElemsAndValidate(t *testing.T) {
	s := tensor.Shape{3, 4, 5}
	if s.Elems() != 60 {
		t.Fatalf("Elems = %d", s.Elems())
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("valid shape rejected: %v", err)
	}
	for _, bad := range []tensor.Shape{{}, {0}, {2, -1}, {1, 2, 3, 4, 5}} {
		if err := bad.Validate(); err == nil {
			t.Errorf("shape %v accepted", bad)
		}
	}
	if !s.Equal(s.Clone()) {
		t.Error("clone not equal")
	}
	c := s.Clone()
	c[0] = 9
	if s[0] == 9 {
		t.Error("clone aliases original")
	}
}

func TestInt8Indexing(t *testing.T) {
	a := tensor.NewInt8(2, 3, 4)
	a.Set3(1, 2, 3, -7)
	if a.At3(1, 2, 3) != -7 {
		t.Fatal("At3/Set3 mismatch")
	}
	if a.Data[(1*3+2)*4+3] != -7 {
		t.Fatal("CHW layout broken")
	}
	w := tensor.NewInt8(2, 3, 2, 2)
	w.Set4(1, 2, 1, 0, 5)
	if w.At4(1, 2, 1, 0) != 5 {
		t.Fatal("At4/Set4 mismatch")
	}
	if w.Data[((1*3+2)*2+1)*2+0] != 5 {
		t.Fatal("OIHW layout broken")
	}
}

func TestEqualAndClone(t *testing.T) {
	a := tensor.NewInt8(2, 2, 2)
	tensor.FillPattern(a, 1)
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone differs")
	}
	b.Data[0]++
	if a.Equal(b) {
		t.Fatal("mutation not detected")
	}
	c := tensor.NewInt8(2, 2, 3)
	if a.Equal(c) {
		t.Fatal("shape mismatch not detected")
	}
}

func TestFillPatternDeterministic(t *testing.T) {
	a := tensor.NewInt8(4, 5, 6)
	b := tensor.NewInt8(4, 5, 6)
	tensor.FillPattern(a, 42)
	tensor.FillPattern(b, 42)
	if !a.Equal(b) {
		t.Fatal("same seed produced different tensors")
	}
	tensor.FillPattern(b, 43)
	if a.Equal(b) {
		t.Fatal("different seeds produced identical tensors")
	}
	// The pattern should cover both signs.
	pos, neg := false, false
	for _, v := range a.Data {
		if v > 0 {
			pos = true
		}
		if v < 0 {
			neg = true
		}
	}
	if !pos || !neg {
		t.Fatal("pattern does not span int8 range")
	}
}

func TestCosineSimilarity(t *testing.T) {
	a := tensor.NewFloat32(4)
	b := tensor.NewFloat32(4)
	copy(a.Data, []float32{1, 0, 0, 0})
	copy(b.Data, []float32{1, 0, 0, 0})
	if s, _ := tensor.CosineSimilarity(a, b); math.Abs(s-1) > 1e-9 {
		t.Fatalf("identical vectors cos = %v", s)
	}
	copy(b.Data, []float32{0, 1, 0, 0})
	if s, _ := tensor.CosineSimilarity(a, b); math.Abs(s) > 1e-9 {
		t.Fatalf("orthogonal vectors cos = %v", s)
	}
	z := tensor.NewFloat32(4)
	if s, _ := tensor.CosineSimilarity(a, z); s != 0 {
		t.Fatalf("zero vector cos = %v", s)
	}
	short := tensor.NewFloat32(3)
	if _, err := tensor.CosineSimilarity(a, short); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

// Property: cosine similarity is symmetric and bounded in [-1, 1].
func TestCosineProperties(t *testing.T) {
	f := func(x, y []float32) bool {
		n := len(x)
		if len(y) < n {
			n = len(y)
		}
		if n == 0 {
			return true
		}
		a := tensor.NewFloat32(n)
		b := tensor.NewFloat32(n)
		copy(a.Data, x[:n])
		copy(b.Data, y[:n])
		for i := 0; i < n; i++ {
			if math.IsNaN(float64(a.Data[i])) || math.IsInf(float64(a.Data[i]), 0) ||
				math.IsNaN(float64(b.Data[i])) || math.IsInf(float64(b.Data[i]), 0) {
				return true
			}
			// Avoid float32 overflow in the dot product.
			if math.Abs(float64(a.Data[i])) > 1e18 || math.Abs(float64(b.Data[i])) > 1e18 {
				return true
			}
		}
		ab, _ := tensor.CosineSimilarity(a, b)
		ba, _ := tensor.CosineSimilarity(b, a)
		return math.Abs(ab-ba) < 1e-9 && ab <= 1+1e-9 && ab >= -1-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
