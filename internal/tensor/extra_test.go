package tensor_test

import (
	"math"
	"strings"
	"testing"

	"inca/internal/tensor"
)

func TestInt32Tensor(t *testing.T) {
	a := tensor.NewInt32(2, 3, 4)
	a.Set3(1, 2, 3, -70000)
	if a.At3(1, 2, 3) != -70000 {
		t.Fatal("Int32 At3/Set3 mismatch")
	}
	b := a.Clone()
	b.Set3(0, 0, 0, 5)
	if a.At3(0, 0, 0) == 5 {
		t.Fatal("Int32 clone aliases")
	}
}

func TestFloat32Tensor(t *testing.T) {
	f := tensor.NewFloat32(2, 2, 2)
	f.Set3(1, 1, 1, -3.5)
	if f.At3(1, 1, 1) != -3.5 {
		t.Fatal("Float32 At3/Set3 mismatch")
	}
	if f.AbsMax() != 3.5 {
		t.Fatalf("AbsMax %v", f.AbsMax())
	}
	c := f.Clone()
	c.Set3(0, 0, 0, 9)
	if f.At3(0, 0, 0) == 9 {
		t.Fatal("Float32 clone aliases")
	}
	if tensor.NewFloat32(3).AbsMax() != 0 {
		t.Fatal("zero tensor AbsMax")
	}
	want := math.Sqrt(3.5 * 3.5)
	if got := f.L2Norm(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("L2 %v, want %v", got, want)
	}
}

func TestFillPatternFloat32(t *testing.T) {
	a := tensor.NewFloat32(100)
	b := tensor.NewFloat32(100)
	tensor.FillPatternFloat32(a, 3)
	tensor.FillPatternFloat32(b, 3)
	pos, neg := false, false
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("not deterministic")
		}
		if a.Data[i] > 1.001 || a.Data[i] < -1.001 {
			t.Fatalf("value %v outside [-1,1]", a.Data[i])
		}
		if a.Data[i] > 0 {
			pos = true
		}
		if a.Data[i] < 0 {
			neg = true
		}
	}
	if !pos || !neg {
		t.Fatal("pattern does not span both signs")
	}
}

func TestShapeString(t *testing.T) {
	s := tensor.Shape{3, 4}
	if got := s.String(); !strings.Contains(got, "3") || !strings.Contains(got, "4") {
		t.Fatalf("String %q", got)
	}
}

func TestDotErrors(t *testing.T) {
	a := tensor.NewFloat32(3)
	b := tensor.NewFloat32(4)
	if _, err := tensor.Dot(a, b); err == nil {
		t.Fatal("size mismatch accepted")
	}
	a.Data = []float32{1, 2, 3}
	c := tensor.NewFloat32(3)
	c.Data = []float32{4, 5, 6}
	d, err := tensor.Dot(a, c)
	if err != nil || d != 32 {
		t.Fatalf("dot = %v, %v", d, err)
	}
}
