package iau_test

import (
	"testing"

	"inca/internal/accel"
	"inca/internal/compiler"
	"inca/internal/fault"
	"inca/internal/iau"
	"inca/internal/isa"
	"inca/internal/model"
	"inca/internal/quant"
	"inca/internal/tensor"
)

// buildBatched compiles a functional batched plan for the network.
func buildBatched(t *testing.T, g *model.Network, cfg accel.Config, batch int, seed uint64) (*isa.Program, *quant.Network) {
	t.Helper()
	q, err := quant.Synthesize(g, seed)
	if err != nil {
		t.Fatalf("synthesize %s: %v", g.Name, err)
	}
	opt := cfg.CompilerOptions()
	opt.VI = compiler.VIEvery{}
	opt.EmitWeights = true
	opt.Batch = batch
	p, err := compiler.Compile(q, opt)
	if err != nil {
		t.Fatalf("compile %s batch=%d: %v", g.Name, batch, err)
	}
	return p, q
}

// batchInputs builds batch distinct input planes and writes them into a
// fresh arena for the program.
func batchInputs(t *testing.T, p *isa.Program, g *model.Network, batch int) ([]byte, []*tensor.Int8) {
	t.Helper()
	arena, err := accel.NewArena(p)
	if err != nil {
		t.Fatalf("arena: %v", err)
	}
	inputs := make([]*tensor.Int8, batch)
	for b := range inputs {
		inputs[b] = tensor.NewInt8(g.InC, g.InH, g.InW)
		tensor.FillPattern(inputs[b], 0x5EED^(uint64(b)*0x9E37))
		if err := accel.WriteInputAt(arena, p, inputs[b], b); err != nil {
			t.Fatalf("write input %d: %v", b, err)
		}
	}
	return arena, inputs
}

// checkBatchOutputs asserts every element's output plane is bit-identical to
// the quantized reference run on that element alone.
func checkBatchOutputs(t *testing.T, arena []byte, p *isa.Program, vq *quant.Network, inputs []*tensor.Int8) {
	t.Helper()
	for b, in := range inputs {
		want, err := vq.RunFinal(in)
		if err != nil {
			t.Fatalf("reference element %d: %v", b, err)
		}
		got, err := accel.ReadOutputAt(arena, p, b)
		if err != nil {
			t.Fatalf("read output %d: %v", b, err)
		}
		if !got.Equal(want) {
			t.Fatalf("batch element %d differs from single-image reference", b)
		}
	}
}

// TestMidBatchParkTokenAndMigration: a batched victim preempted between
// batch elements parks at a VI interrupt point whose ResumeToken carries the
// batch index; injecting the token into a different slot resumes exactly the
// remaining elements and every output plane stays bit-exact.
func TestMidBatchParkTokenAndMigration(t *testing.T) {
	cfg := accel.Big()
	cfg.ParaIn, cfg.ParaOut, cfg.ParaHeight = 4, 4, 3

	const batch = 4
	victim := model.New("bvictim", 6, 12, 12)
	victim.Conv("c0", 0, 12, 3, 1, 1, true)
	victim.Conv("c1", 1, 8, 3, 1, 1, false)
	preemptor := model.NewTinyCNN(3, 16, 16)

	vp, vq := buildBatched(t, victim, cfg, batch, 21)
	pp, _ := buildFunctional(t, preemptor, cfg, true, 23)

	varena, inputs := batchInputs(t, vp, victim, batch)
	pin := tensor.NewInt8(preemptor.InC, preemptor.InH, preemptor.InW)
	tensor.FillPattern(pin, 6)

	// Walk the preemption boundary across the victim's runtime until one
	// parks between batch elements (BatchIndex > 0): batched plans place an
	// interrupt point after every per-element SAVE, so mid-batch parks are
	// the common case, but early boundaries can land on an out-group edge.
	migrated := false
	for off := uint64(800); off < 60_000 && !migrated; off += 977 {
		varena2 := append([]byte(nil), varena...)
		u := iau.New(cfg, iau.PolicyVI)
		vr := &iau.Request{Label: "victim", Prog: vp, Arena: varena2}
		if err := u.Submit(2, vr); err != nil {
			t.Fatal(err)
		}
		parena, err := accel.NewArena(pp)
		if err != nil {
			t.Fatal(err)
		}
		if err := accel.WriteInput(parena, pp, pin); err != nil {
			t.Fatal(err)
		}
		if err := u.SubmitAt(0, &iau.Request{Label: "p", Prog: pp, Arena: parena}, off); err != nil {
			t.Fatal(err)
		}
		var tok *iau.ResumeToken
		u.OnPreempt = func(pr *iau.Preemption) {
			if tok != nil {
				return
			}
			st, err := u.StealPreempted(pr.Victim)
			if err != nil {
				t.Fatalf("steal: %v", err)
			}
			tok = st
			if err := u.InjectPreempted(3, tok); err != nil {
				t.Fatalf("inject: %v", err)
			}
		}
		if err := u.RunAll(); err != nil {
			t.Fatal(err)
		}
		if tok == nil || tok.BatchIndex() == 0 {
			continue // parked at an element-0 boundary; try the next offset
		}
		migrated = true
		if len(u.Completions) != 2 {
			t.Fatalf("%d completions, want 2", len(u.Completions))
		}
		checkBatchOutputs(t, varena2, vp, vq, inputs)
	}
	if !migrated {
		t.Fatal("no preemption parked between batch elements across the offset sweep")
	}
}

// TestMidBatchCorruptSnapshotRecoversBitExact: with every CPU-like snapshot
// of a batched victim corrupted in DDR (the snapshot now carries per-element
// window registers and the accumulator's batch index in its checksum), the
// CRC check detects each corruption at restore, the victim re-executes, and
// every batch element's output is still bit-identical to the single-image
// reference.
func TestMidBatchCorruptSnapshotRecoversBitExact(t *testing.T) {
	cfg := accel.Big()
	cfg.ParaIn, cfg.ParaOut, cfg.ParaHeight = 4, 4, 3

	const batch = 4
	victim := model.New("bvictim", 4, 10, 10)
	victim.Conv("c0", 0, 10, 3, 1, 1, true)
	victim.Conv("c1", 1, 6, 1, 1, 0, false)
	preemptor := model.NewTinyCNN(3, 16, 16)

	vp, vq := buildBatched(t, victim, cfg, batch, 31)
	pp, _ := buildFunctional(t, preemptor, cfg, true, 33)

	varena, inputs := batchInputs(t, vp, victim, batch)
	pin := tensor.NewInt8(preemptor.InC, preemptor.InH, preemptor.InW)
	tensor.FillPattern(pin, 6)

	u := iau.New(cfg, iau.PolicyCPULike)
	u.Faults = fault.New(7)
	u.Faults.SetRate(fault.SiteBackup, 1.0)
	vr := &iau.Request{Label: "victim", Prog: vp, Arena: varena}
	if err := u.Submit(2, vr); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20 && vr.DoneCycle == 0; i++ {
		parena, err := accel.NewArena(pp)
		if err != nil {
			t.Fatal(err)
		}
		if err := accel.WriteInput(parena, pp, pin); err != nil {
			t.Fatal(err)
		}
		at := u.Now + 1200 + uint64(i*191)
		if err := u.SubmitAt(0, &iau.Request{Label: "p", Prog: pp, Arena: parena}, at); err != nil {
			t.Fatal(err)
		}
		for len(u.Completions) < i+1 && u.Pending() {
			if err := u.Run(u.Now + 2000); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := u.RunAll(); err != nil {
		t.Fatal(err)
	}

	if u.Fault.CorruptedRestores == 0 {
		t.Fatal("no corrupted restore detected despite rate 1.0")
	}
	if vr.Restarts != vr.Corrupted {
		t.Errorf("%d corruptions but %d restarts", vr.Corrupted, vr.Restarts)
	}
	checkBatchOutputs(t, varena, vp, vq, inputs)
}
