package iau_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"inca/internal/accel"
	"inca/internal/compiler"
	"inca/internal/iau"
	"inca/internal/model"
	"inca/internal/quant"
	"inca/internal/tensor"
)

// randomNetwork builds a small random conv/pool/residual network.
func randomNetwork(r *rand.Rand) *model.Network {
	c := 1 + r.Intn(4)
	h := 8 + r.Intn(16)
	w := 8 + r.Intn(16)
	g := model.New("prop", c, h, w)
	cur := 0
	n := 1 + r.Intn(4)
	for i := 0; i < n; i++ {
		shapes, err := g.InferShapes()
		if err != nil {
			break
		}
		in := shapes[cur]
		switch r.Intn(5) {
		case 0, 1: // dense conv
			k := []int{1, 3}[r.Intn(2)]
			stride := 1 + r.Intn(2)
			if (in.H-k)/stride+1 < 2 || (in.W-k)/stride+1 < 2 {
				continue
			}
			cur = g.Conv("c", cur, 1+r.Intn(12), k, stride, k/2, r.Intn(2) == 0)
		case 2: // depthwise
			if in.H < 4 || in.W < 4 {
				continue
			}
			cur = g.DWConv("d", cur, 3, 1, 1, true)
		case 3: // residual block
			if in.H < 4 || in.W < 4 {
				continue
			}
			a := g.Conv("ra", cur, in.C, 3, 1, 1, true)
			cur = g.Residual("add", a, cur, r.Intn(2) == 0)
		case 4: // pool
			if in.H < 5 || in.W < 5 {
				continue
			}
			cur = g.MaxPool("p", cur, 2, 2)
		}
	}
	if g.NumConvLayers() == 0 {
		g.Conv("fallback", cur, 4, 3, 1, 1, true)
	}
	return g
}

// TestPropertyPreemptionBitExact is the paper's core correctness property,
// checked over randomized networks, parallelisms, save granularities,
// policies, and preemption schedules: an interrupted run writes exactly the
// bytes an uninterrupted run writes.
func TestPropertyPreemptionBitExact(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomNetwork(r)

		cfg := accel.Big()
		cfg.ParaIn = 1 + r.Intn(6)
		cfg.ParaOut = 1 + r.Intn(6)
		cfg.ParaHeight = 1 + r.Intn(4)
		opt := cfg.CompilerOptions()
		opt.BlobsPerSave = r.Intn(4)
		opt.VI = compiler.VIEvery{}
		opt.EmitWeights = true

		q, err := quant.Synthesize(g, uint64(seed))
		if err != nil {
			t.Logf("seed %d: synthesize: %v", seed, err)
			return false
		}
		p, err := compiler.Compile(q, opt)
		if err != nil {
			t.Logf("seed %d: compile: %v", seed, err)
			return false
		}
		input := tensor.NewInt8(g.InC, g.InH, g.InW)
		tensor.FillPattern(input, uint64(seed)+1)
		want, err := q.RunFinal(input)
		if err != nil {
			t.Logf("seed %d: reference: %v", seed, err)
			return false
		}

		// Preemptor: tiny program.
		pg := model.NewTinyCNN(1, 6, 6)
		pq, err := quant.Synthesize(pg, 1)
		if err != nil {
			return false
		}
		popt := cfg.CompilerOptions()
		popt.EmitWeights = true
		pp, err := compiler.Compile(pq, popt)
		if err != nil {
			t.Logf("seed %d: preemptor compile: %v", seed, err)
			return false
		}

		policies := []iau.Policy{iau.PolicyVI, iau.PolicyLayerByLayer, iau.PolicyCPULike}
		pol := policies[r.Intn(len(policies))]

		arena, err := accel.NewArena(p)
		if err != nil {
			t.Logf("seed %d: arena: %v", seed, err)
			return false
		}
		if err := accel.WriteInput(arena, p, input); err != nil {
			return false
		}
		u := iau.New(cfg, pol)
		if err := u.Submit(3, &iau.Request{Label: "victim", Prog: p, Arena: arena}); err != nil {
			return false
		}
		// Random burst of preemptors across random slots and times.
		bursts := 1 + r.Intn(6)
		for i := 0; i < bursts; i++ {
			pa, err := accel.NewArena(pp)
			if err != nil {
				return false
			}
			pin := tensor.NewInt8(1, 6, 6)
			tensor.FillPattern(pin, uint64(i))
			if err := accel.WriteInput(pa, pp, pin); err != nil {
				return false
			}
			at := uint64(r.Intn(200000))
			if err := u.SubmitAt(r.Intn(3), &iau.Request{Label: "probe", Prog: pp, Arena: pa}, at); err != nil {
				return false
			}
		}
		if err := u.RunAll(); err != nil {
			t.Logf("seed %d (%v): run: %v", seed, pol, err)
			return false
		}
		got, err := accel.ReadOutput(arena, p)
		if err != nil {
			return false
		}
		if !got.Equal(want) {
			t.Logf("seed %d (%v): output mismatch after %d preemptions", seed, pol, len(u.Preemptions))
			return false
		}
		return true
	}
	cfgq := &quick.Config{MaxCount: 40}
	if testing.Short() {
		cfgq.MaxCount = 10
	}
	if err := quick.Check(f, cfgq); err != nil {
		t.Fatal(err)
	}
}
