// Package iau simulates the Instruction Arrangement Unit — the hardware
// block INCA adds between instruction memory and the CNN accelerator
// (Fig. 3 of the paper). The IAU holds four task slots with static
// priorities (slot 0 highest, never preempted), fetches each task's VI-ISA
// stream, and feeds the accelerator plain original-ISA instructions:
//
//   - in normal flow virtual instructions are fetched and discarded (a
//     few cycles each — the source of the <0.3 % degradation);
//   - when a higher-priority request is pending, the IAU waits for the
//     next legal boundary, materialises the Vir_SAVE backup, switches
//     streams, and on resume materialises the Vir_LOAD_D restores;
//   - per-slot SaveID/SaveBytes registers track what a Vir_SAVE already
//     stored so the next original SAVE is rewritten to skip it (no
//     duplicate output transfer).
//
// The same runtime also implements the paper's two baselines: CPU-like
// (switch anywhere, spill/refill every on-chip cache) and layer-by-layer
// (switch only between layers).
package iau

import (
	"container/heap"
	"fmt"

	"inca/internal/accel"
	"inca/internal/isa"
)

// NumSlots is the number of priority task slots (paper: four).
const NumSlots = 4

// Policy selects the interrupt mechanism.
type Policy int

// Interrupt policies.
const (
	// PolicyNone runs every task to completion (native accelerator).
	PolicyNone Policy = iota
	// PolicyVI is the paper's virtual-instruction method.
	PolicyVI
	// PolicyLayerByLayer switches only at layer boundaries.
	PolicyLayerByLayer
	// PolicyCPULike switches at any instruction, spilling all on-chip caches.
	PolicyCPULike
)

func (p Policy) String() string {
	switch p {
	case PolicyNone:
		return "none"
	case PolicyVI:
		return "virtual-instruction"
	case PolicyLayerByLayer:
		return "layer-by-layer"
	case PolicyCPULike:
		return "cpu-like"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// State is a task slot's scheduling state.
type State int

// Slot states.
const (
	Idle State = iota
	Ready
	Running
	Preempted
)

// Request is one execution of a program on a slot.
type Request struct {
	Label string
	Prog  *isa.Program
	Arena []byte // nil for timing-only

	// DropIfBusy discards the request at arrival when the slot already has
	// work queued or in flight (camera pipelines drop frames rather than
	// queueing them unboundedly).
	DropIfBusy bool

	// Filled by the runtime.
	SubmitCycle   uint64
	StartCycle    uint64
	DoneCycle     uint64
	ExecCycles    uint64 // accelerator-busy cycles spent on this request
	FetchCycles   uint64 // IAU overhead skipping virtual instructions
	Preemptions   int    // times this request was preempted
	InterruptCost uint64 // backup+restore cycles charged to this request
}

// Completion is the record returned when a request finishes.
type Completion struct {
	Slot int
	Req  *Request
}

// Preemption records one task switch forced by a higher-priority request.
type Preemption struct {
	Victim, Preemptor int
	RequestCycle      uint64 // preemptor became ready
	BoundaryCycle     uint64 // victim reached a legal switch point (t1 end)
	BackupDoneCycle   uint64 // backup finished (t2 end) — latency = this - request
	BackupBytes       uint64
	ResumeCycles      uint64 // t4: restore cost paid when the victim resumed
	ResumeBytes       uint64
	Resumed           bool
	VictimPC          int    // victim stream position at the switch
	VictimLayer       string // victim layer executing when the request landed
}

// TraceKind classifies a timeline event.
type TraceKind int

// Trace event kinds.
const (
	TraceStart TraceKind = iota
	TracePreempt
	TraceResume
	TraceComplete
	TraceDrop
)

func (k TraceKind) String() string {
	switch k {
	case TraceStart:
		return "start"
	case TracePreempt:
		return "preempt"
	case TraceResume:
		return "resume"
	case TraceComplete:
		return "complete"
	case TraceDrop:
		return "drop"
	default:
		return fmt.Sprintf("TraceKind(%d)", int(k))
	}
}

// TraceEvent is one entry of the execution timeline (EnableTrace).
type TraceEvent struct {
	Cycle uint64
	Kind  TraceKind
	Slot  int
	Label string
	PC    int
}

func (e TraceEvent) String() string {
	return fmt.Sprintf("@%-12d %-8s slot%d %-18s pc=%d", e.Cycle, e.Kind, e.Slot, e.Label, e.PC)
}

// Latency returns the interrupt response latency (t1+t2) in cycles.
func (p *Preemption) Latency() uint64 { return p.BackupDoneCycle - p.RequestCycle }

// Cost returns the extra cycles the interrupt added (t2+t4).
func (p *Preemption) Cost() uint64 {
	return (p.BackupDoneCycle - p.BoundaryCycle) + p.ResumeCycles
}

type task struct {
	slot  int
	queue []*Request
	cur   *Request
	state State
	pc    int

	readySince uint64

	// SAVE-rewrite registers.
	saveValid bool
	saveID    uint32
	saveBytes uint32

	snapshot *accel.Snapshot // CPU-like backup
	lastPre  *Preemption     // record to charge resume cost to
}

type arrival struct {
	cycle uint64
	slot  int
	req   *Request
	seq   int
}

type arrivalHeap []arrival

func (h arrivalHeap) Len() int { return len(h) }
func (h arrivalHeap) Less(i, j int) bool {
	if h[i].cycle != h[j].cycle {
		return h[i].cycle < h[j].cycle
	}
	return h[i].seq < h[j].seq
}
func (h arrivalHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *arrivalHeap) Push(x interface{}) { *h = append(*h, x.(arrival)) }
func (h *arrivalHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// IAU is the simulated instruction arrangement unit plus its accelerator.
type IAU struct {
	Cfg    accel.Config
	Policy Policy
	Eng    *accel.Engine

	Now uint64

	// OnComplete, when set, is invoked after every completion; it may submit
	// follow-up requests (closed-loop workloads such as continuous PR).
	OnComplete func(Completion)
	// OnDrop, when set, is invoked when a DropIfBusy request is discarded.
	OnDrop func(slot int, req *Request)
	// OnPreempt, when set, is invoked right after a preemption is recorded
	// (the victim is in the Preempted state); a multi-accelerator dispatcher
	// may steal the victim from here and resume it elsewhere.
	OnPreempt func(*Preemption)

	Completions []Completion
	Preemptions []*Preemption

	// EnableTrace records a timeline of start/preempt/resume/complete/drop
	// events in Trace.
	EnableTrace bool
	Trace       []TraceEvent

	BusyCycles uint64 // cycles the accelerator executed instructions
	IdleCycles uint64

	slots    [NumSlots]*task
	arrivals arrivalHeap
	seq      int
	running  int // slot currently executing, or -1
}

// New creates an IAU for the given accelerator configuration and policy.
func New(cfg accel.Config, policy Policy) *IAU {
	u := &IAU{Cfg: cfg, Policy: policy, Eng: accel.NewEngine(cfg), running: -1}
	for i := range u.slots {
		u.slots[i] = &task{slot: i, state: Idle}
	}
	return u
}

// Submit enqueues a request on a priority slot at the current cycle.
func (u *IAU) Submit(slot int, req *Request) error {
	return u.SubmitAt(slot, req, u.Now)
}

// SubmitAt enqueues a request that arrives at the given cycle (>= Now).
func (u *IAU) SubmitAt(slot int, req *Request, cycle uint64) error {
	if slot < 0 || slot >= NumSlots {
		return fmt.Errorf("iau: slot %d out of range [0,%d)", slot, NumSlots)
	}
	if req == nil || req.Prog == nil {
		return fmt.Errorf("iau: nil request/program")
	}
	if cycle < u.Now {
		return fmt.Errorf("iau: submission at cycle %d is in the past (now %d)", cycle, u.Now)
	}
	req.SubmitCycle = cycle
	u.seq++
	heap.Push(&u.arrivals, arrival{cycle: cycle, slot: slot, req: req, seq: u.seq})
	return nil
}

// Pending reports whether any work (queued, ready, or in flight) remains.
func (u *IAU) Pending() bool {
	if len(u.arrivals) > 0 {
		return true
	}
	for _, t := range u.slots {
		if t.state != Idle || len(t.queue) > 0 || t.cur != nil {
			return true
		}
	}
	return false
}

func (u *IAU) admit() {
	for len(u.arrivals) > 0 && u.arrivals[0].cycle <= u.Now {
		a := heap.Pop(&u.arrivals).(arrival)
		t := u.slots[a.slot]
		if a.req.DropIfBusy && (t.cur != nil || len(t.queue) > 0) {
			u.trace(TraceDrop, a.slot, a.req.Label, 0)
			if u.OnDrop != nil {
				u.OnDrop(a.slot, a.req)
			}
			continue
		}
		t.queue = append(t.queue, a.req)
		if t.state == Idle {
			t.state = Ready
			t.readySince = a.cycle
		}
	}
}

// bestReady returns the highest-priority slot with runnable work, or -1.
func (u *IAU) bestReady() int {
	for i, t := range u.slots {
		if t.state == Ready || t.state == Running || t.state == Preempted {
			return i
		}
	}
	return -1
}

// Run advances the simulation until no work remains or the horizon cycle is
// reached, whichever comes first.
func (u *IAU) Run(horizon uint64) error {
	for {
		u.admit()
		if u.Now >= horizon {
			return nil
		}
		best := u.bestReady()
		if best == -1 {
			if len(u.arrivals) == 0 {
				return nil
			}
			next := u.arrivals[0].cycle
			if next > horizon {
				u.IdleCycles += horizon - u.Now
				u.Now = horizon
				return nil
			}
			u.IdleCycles += next - u.Now
			u.Now = next
			continue
		}
		if u.running == -1 {
			if err := u.dispatch(best); err != nil {
				return err
			}
			continue
		}
		if best < u.running && u.canSwitch(u.slots[u.running]) {
			if err := u.preempt(u.running, best); err != nil {
				return err
			}
			continue
		}
		if err := u.execOne(u.slots[u.running]); err != nil {
			return err
		}
	}
}

// RunAll drives the simulation to completion of all submitted work.
func (u *IAU) RunAll() error {
	for u.Pending() {
		if err := u.Run(^uint64(0)); err != nil {
			return err
		}
		if !u.Pending() {
			return nil
		}
	}
	return nil
}

// canSwitch reports whether the running task's next instruction is a legal
// switch boundary under the active policy.
func (u *IAU) canSwitch(t *task) bool {
	switch u.Policy {
	case PolicyCPULike:
		return true
	case PolicyVI:
		ins := t.cur.Prog.Instrs
		in := ins[t.pc]
		if in.Op == isa.OpVirSave {
			return true
		}
		if in.Op == isa.OpVirLoadD {
			// A lone Vir_LOAD_D (post-SAVE point). A Vir_LOAD_D right after
			// a Vir_SAVE is mid-group: switching there would lose the
			// unsaved results whose backup was already skipped.
			return t.pc == 0 || ins[t.pc-1].Op != isa.OpVirSave
		}
		return false
	case PolicyLayerByLayer:
		ins := t.cur.Prog.Instrs
		if t.pc == 0 || ins[t.pc].Op == isa.OpEnd {
			return false // about to finish anyway
		}
		return ins[t.pc].Layer != ins[t.pc-1].Layer
	default:
		return false
	}
}

// dispatch starts or resumes the given slot.
func (u *IAU) dispatch(slot int) error {
	t := u.slots[slot]
	switch t.state {
	case Ready:
		t.cur = t.queue[0]
		t.queue = t.queue[1:]
		t.pc = 0
		t.cur.StartCycle = u.Now
		t.saveValid = false
		u.Eng.Invalidate()
		u.trace(TraceStart, slot, t.cur.Label, 0)
	case Preempted:
		if err := u.resume(t); err != nil {
			return err
		}
		u.trace(TraceResume, slot, t.cur.Label, t.pc)
	default:
		return fmt.Errorf("iau: dispatch of slot %d in state %d", slot, t.state)
	}
	t.state = Running
	u.running = slot
	return nil
}

// resume pays the policy's restore cost and re-establishes on-chip state.
func (u *IAU) resume(t *task) error {
	switch u.Policy {
	case PolicyCPULike:
		u.Eng.Restore(t.snapshot)
		// The snapshot's buffers go back to the engine's free list so the
		// next CPU-like backup reuses them instead of allocating.
		u.Eng.ReleaseSnapshot(t.snapshot)
		t.snapshot = nil
		c := u.Cfg.XferCycles(uint32(u.Cfg.TotalBufferBytes()))
		u.advance(t.cur, c)
		t.cur.InterruptCost += c
		if t.lastPre != nil {
			t.lastPre.ResumeCycles += c
			t.lastPre.ResumeBytes += uint64(u.Cfg.TotalBufferBytes())
			t.lastPre.Resumed = true
		}
	case PolicyVI:
		u.Eng.Invalidate()
		ins := t.cur.Prog.Instrs
		for t.pc < len(ins) && ins[t.pc].Op == isa.OpVirLoadD {
			in := ins[t.pc]
			c, err := u.Eng.Exec(t.cur.Arena, t.cur.Prog, in, 0)
			if err != nil {
				return fmt.Errorf("iau: slot %d resume pc %d: %w", t.slot, t.pc, err)
			}
			u.advance(t.cur, c)
			t.cur.InterruptCost += c
			if t.lastPre != nil {
				t.lastPre.ResumeCycles += c
				t.lastPre.ResumeBytes += uint64(in.Len)
			}
			t.pc++
		}
		if t.lastPre != nil {
			t.lastPre.Resumed = true
		}
	default:
		// Layer-by-layer: next layer reloads everything through its own
		// ordinary LOAD instructions; nothing to restore.
		u.Eng.Invalidate()
		if t.lastPre != nil {
			t.lastPre.Resumed = true
		}
	}
	return nil
}

// preempt switches from the running victim to a higher-priority slot,
// performing the policy's backup at the already-reached boundary.
func (u *IAU) preempt(victim, preemptor int) error {
	vt := u.slots[victim]
	rec := &Preemption{
		Victim: victim, Preemptor: preemptor,
		RequestCycle:  u.slots[preemptor].readySince,
		BoundaryCycle: u.Now,
		VictimPC:      vt.pc,
	}
	if in := vt.cur.Prog.Instrs[vt.pc]; in.Op != isa.OpEnd {
		rec.VictimLayer = vt.cur.Prog.Layers[in.Layer].Name
	}
	switch u.Policy {
	case PolicyCPULike:
		vt.snapshot = u.Eng.Snapshot()
		c := u.Cfg.XferCycles(uint32(u.Cfg.TotalBufferBytes()))
		u.advance(vt.cur, c)
		vt.cur.InterruptCost += c
		rec.BackupBytes = uint64(u.Cfg.TotalBufferBytes())
	case PolicyVI:
		// The boundary stops the MAC array; the backup transfer cannot hide
		// under compute.
		u.Eng.DrainPipeline()
		ins := vt.cur.Prog.Instrs
		if ins[vt.pc].Op == isa.OpVirSave {
			in := ins[vt.pc]
			var skip uint32
			if vt.saveValid && vt.saveID == in.SaveID {
				skip = vt.saveBytes
			}
			c, err := u.Eng.Exec(vt.cur.Arena, vt.cur.Prog, in, skip)
			if err != nil {
				return fmt.Errorf("iau: slot %d backup pc %d: %w", victim, vt.pc, err)
			}
			u.advance(vt.cur, c)
			vt.cur.InterruptCost += c
			rec.BackupBytes = uint64(in.Len - skip)
			vt.saveValid = true
			vt.saveID = in.SaveID
			vt.saveBytes = in.Len
			vt.pc++ // resume at the following Vir_LOAD_D restores
		}
	case PolicyLayerByLayer:
		// No backup at a layer boundary.
	default:
		return fmt.Errorf("iau: policy %v cannot preempt", u.Policy)
	}
	rec.BackupDoneCycle = u.Now
	vt.state = Preempted
	vt.cur.Preemptions++
	vt.lastPre = rec
	u.trace(TracePreempt, victim, vt.cur.Label, vt.pc)
	u.Preemptions = append(u.Preemptions, rec)
	u.Eng.Invalidate()
	u.running = -1
	if u.OnPreempt != nil {
		u.OnPreempt(rec)
	}
	return nil
}

// ResumeToken carries a preempted request's scheduling state so it can be
// resumed on a different IAU. This works because every interrupt policy's
// backup lands in DDR, which multi-accelerator MPSoC systems share: the
// paper's future-work direction (multi-core multi-tasking) gets task
// migration almost for free from the VI mechanism.
type ResumeToken struct {
	Req       *Request
	Policy    Policy
	pc        int
	saveValid bool
	saveID    uint32
	saveBytes uint32
	snapshot  *accel.Snapshot
}

// Registers is the architectural per-slot register view of Fig. 3: the
// instruction pointer, the SAVE-rewrite status registers, and the slot's
// scheduling state. Exposed for debugging and the inca-sim inspector.
type Registers struct {
	State      State
	Label      string // current request, "" when idle
	InstrAddr  int    // next instruction index in the task's stream
	SaveValid  bool
	SaveID     uint32
	SaveLength uint32
	QueueDepth int
}

// Registers returns the architectural state of one task slot.
func (u *IAU) Registers(slot int) Registers {
	if slot < 0 || slot >= NumSlots {
		return Registers{}
	}
	t := u.slots[slot]
	r := Registers{
		State:      t.state,
		InstrAddr:  t.pc,
		SaveValid:  t.saveValid,
		SaveID:     t.saveID,
		SaveLength: t.saveBytes,
		QueueDepth: len(t.queue),
	}
	if t.cur != nil {
		r.Label = t.cur.Label
	}
	return r
}

// SlotFree reports whether a slot has no current request and an empty
// queue (an InjectPreempted target).
func (u *IAU) SlotFree(slot int) bool {
	if slot < 0 || slot >= NumSlots {
		return false
	}
	t := u.slots[slot]
	return t.state == Idle && t.cur == nil && len(t.queue) == 0
}

// PeekPreempted returns the slot's preempted request without removing it,
// or nil.
func (u *IAU) PeekPreempted(slot int) *Request {
	if slot < 0 || slot >= NumSlots {
		return nil
	}
	t := u.slots[slot]
	if t.state != Preempted {
		return nil
	}
	return t.cur
}

// StealPreempted removes the slot's preempted request and returns a token
// that InjectPreempted can install on another IAU of the same policy.
func (u *IAU) StealPreempted(slot int) (*ResumeToken, error) {
	if slot < 0 || slot >= NumSlots {
		return nil, fmt.Errorf("iau: slot %d out of range", slot)
	}
	t := u.slots[slot]
	if t.state != Preempted || t.cur == nil {
		return nil, fmt.Errorf("iau: slot %d has no preempted request to steal", slot)
	}
	tok := &ResumeToken{
		Req: t.cur, Policy: u.Policy,
		pc: t.pc, saveValid: t.saveValid, saveID: t.saveID, saveBytes: t.saveBytes,
		snapshot: t.snapshot,
	}
	t.cur = nil
	t.snapshot = nil
	t.lastPre = nil
	t.saveValid = false
	if len(t.queue) > 0 {
		t.state = Ready
		t.readySince = u.Now
	} else {
		t.state = Idle
	}
	return tok, nil
}

// InjectPreempted installs a stolen request on an idle slot; it will resume
// through the policy's normal restore path (Vir_LOAD_D replays, snapshot
// refill) when the slot is dispatched.
func (u *IAU) InjectPreempted(slot int, tok *ResumeToken) error {
	if slot < 0 || slot >= NumSlots {
		return fmt.Errorf("iau: slot %d out of range", slot)
	}
	if tok == nil || tok.Req == nil {
		return fmt.Errorf("iau: nil resume token")
	}
	if tok.Policy != u.Policy {
		return fmt.Errorf("iau: token from policy %v cannot resume under %v", tok.Policy, u.Policy)
	}
	t := u.slots[slot]
	if t.state != Idle || t.cur != nil || len(t.queue) > 0 {
		return fmt.Errorf("iau: slot %d busy; cannot inject", slot)
	}
	t.cur = tok.Req
	t.pc = tok.pc
	t.saveValid = tok.saveValid
	t.saveID = tok.saveID
	t.saveBytes = tok.saveBytes
	t.snapshot = tok.snapshot
	t.state = Preempted
	t.readySince = u.Now
	return nil
}

// execOne runs the next instruction of the running task.
func (u *IAU) execOne(t *task) error {
	ins := t.cur.Prog.Instrs
	in := ins[t.pc]
	if in.Op == isa.OpEnd {
		u.complete(t)
		return nil
	}
	if in.Op.Virtual() {
		// Discarded by the IAU: costs only the fetch.
		c := uint64(u.Cfg.FetchCycles)
		u.Now += c
		t.cur.FetchCycles += c
		t.pc++
		return nil
	}
	var skip uint32
	if in.Op == isa.OpSave && t.saveValid && t.saveID == in.SaveID {
		skip = t.saveBytes
	}
	c, err := u.Eng.Exec(t.cur.Arena, t.cur.Prog, in, skip)
	if err != nil {
		return fmt.Errorf("iau: slot %d pc %d: %w", t.slot, t.pc, err)
	}
	if in.Op == isa.OpSave {
		t.saveValid = false
	}
	u.advance(t.cur, c)
	t.pc++
	return nil
}

func (u *IAU) advance(req *Request, cycles uint64) {
	u.Now += cycles
	u.BusyCycles += cycles
	req.ExecCycles += cycles
}

func (u *IAU) trace(kind TraceKind, slot int, label string, pc int) {
	if !u.EnableTrace {
		return
	}
	u.Trace = append(u.Trace, TraceEvent{Cycle: u.Now, Kind: kind, Slot: slot, Label: label, PC: pc})
}

func (u *IAU) complete(t *task) {
	t.cur.DoneCycle = u.Now
	u.trace(TraceComplete, t.slot, t.cur.Label, t.pc)
	comp := Completion{Slot: t.slot, Req: t.cur}
	u.Completions = append(u.Completions, comp)
	t.cur = nil
	t.saveValid = false
	t.lastPre = nil
	if len(t.queue) > 0 {
		t.state = Ready
		t.readySince = u.Now
	} else {
		t.state = Idle
	}
	u.running = -1
	u.Eng.Invalidate()
	if u.OnComplete != nil {
		u.OnComplete(comp)
	}
}
