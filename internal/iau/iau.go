// Package iau simulates the Instruction Arrangement Unit — the hardware
// block INCA adds between instruction memory and the CNN accelerator
// (Fig. 3 of the paper). The IAU holds four task slots with static
// priorities (slot 0 highest, never preempted), fetches each task's VI-ISA
// stream, and feeds the accelerator plain original-ISA instructions:
//
//   - in normal flow virtual instructions are fetched and discarded (a
//     few cycles each — the source of the <0.3 % degradation);
//   - when a higher-priority request is pending, the IAU waits for the
//     next legal boundary, materialises the Vir_SAVE backup, switches
//     streams, and on resume materialises the Vir_LOAD_D restores;
//   - per-slot SaveID/SaveBytes registers track what a Vir_SAVE already
//     stored so the next original SAVE is rewritten to skip it (no
//     duplicate output transfer).
//
// The same runtime also implements the paper's two baselines: CPU-like
// (switch anywhere, spill/refill every on-chip cache) and layer-by-layer
// (switch only between layers).
package iau

import (
	"container/heap"
	"fmt"
	"hash/crc32"

	"inca/internal/accel"
	"inca/internal/fault"
	"inca/internal/isa"
	"inca/internal/trace"
)

// NumSlots is the number of priority task slots (paper: four).
const NumSlots = 4

// Policy selects the interrupt mechanism.
type Policy int

// Interrupt policies.
const (
	// PolicyNone runs every task to completion (native accelerator).
	PolicyNone Policy = iota
	// PolicyVI is the paper's virtual-instruction method.
	PolicyVI
	// PolicyLayerByLayer switches only at layer boundaries.
	PolicyLayerByLayer
	// PolicyCPULike switches at any instruction, spilling all on-chip caches.
	PolicyCPULike
)

func (p Policy) String() string {
	switch p {
	case PolicyNone:
		return "none"
	case PolicyVI:
		return "virtual-instruction"
	case PolicyLayerByLayer:
		return "layer-by-layer"
	case PolicyCPULike:
		return "cpu-like"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// State is a task slot's scheduling state.
type State int

// Slot states.
const (
	Idle State = iota
	Ready
	Running
	Preempted
)

// Request is one execution of a program on a slot.
type Request struct {
	Label string
	Prog  *isa.Program
	Arena []byte // nil for timing-only

	// DropIfBusy discards the request at arrival when the slot already has
	// work queued or in flight (camera pipelines drop frames rather than
	// queueing them unboundedly).
	DropIfBusy bool

	// Filled by the runtime.
	SubmitCycle   uint64
	StartCycle    uint64
	DoneCycle     uint64
	ExecCycles    uint64 // accelerator-busy cycles spent on this request
	FetchCycles   uint64 // IAU overhead skipping virtual instructions
	Preemptions   int    // times this request was preempted
	InterruptCost uint64 // backup+restore cycles charged to this request

	// Fault/recovery accounting (all zero unless IAU.Faults is armed).
	StallCycles uint64 // extra cycles injected by stall faults
	Corrupted   int    // corrupt interrupt backups detected at restore
	Restarts    int    // re-executions from program start after detection
	Retries     int    // resubmissions after a watchdog kill (see Resubmit)
	Failed      bool   // true while the request sits killed, awaiting retry
}

// Completion is the record returned when a request finishes.
type Completion struct {
	Slot int
	Req  *Request

	// Salvage is set only on OnFail deliveries, and only when
	// SalvageCheckpoints is armed and the killed request had a committed
	// checkpoint (its last materialised Vir_SAVE, or its last layer
	// boundary under layer-by-layer). It is a restorable token: a
	// dispatcher may ResumeSalvaged it on a healthy IAU and the request
	// resumes from the checkpoint instead of re-executing from scratch.
	// The destination re-verifies the backup CRC at dispatch, so a
	// checkpoint whose arena span was dirtied after it was taken degrades
	// to the normal detected-restart path.
	Salvage *ResumeToken
}

// Preemption records one task switch forced by a higher-priority request.
type Preemption struct {
	Victim, Preemptor int
	// Method is the interrupt mechanism this particular switch used. Under
	// the static scheduler it always equals IAU.Policy; a Scheduler may pick
	// a different method per decision (PREMA-style), and the victim resumes
	// through the method it was parked with.
	Method          Policy
	RequestCycle    uint64 // preemptor became ready
	BoundaryCycle   uint64 // victim reached a legal switch point (t1 end)
	BackupDoneCycle uint64 // backup finished (t2 end) — latency = this - request
	BackupBytes     uint64
	ResumeCycles    uint64 // t4: restore cost paid when the victim resumed
	ResumeBytes     uint64
	Resumed         bool
	VictimPC        int    // victim stream position at the switch
	VictimLayer     string // victim layer executing when the request landed
}

// TraceKind classifies a timeline event.
type TraceKind int

// Trace event kinds.
const (
	TraceStart TraceKind = iota
	TracePreempt
	TraceResume
	TraceComplete
	TraceDrop
	// TraceRestart marks a corrupt-backup detection: the victim's parked
	// state failed its checksum and the request re-executes from the start.
	TraceRestart
	// TraceKill marks a watchdog kill of a hung slot.
	TraceKill
)

func (k TraceKind) String() string {
	switch k {
	case TraceStart:
		return "start"
	case TracePreempt:
		return "preempt"
	case TraceResume:
		return "resume"
	case TraceComplete:
		return "complete"
	case TraceDrop:
		return "drop"
	case TraceRestart:
		return "restart"
	case TraceKill:
		return "kill"
	default:
		return fmt.Sprintf("TraceKind(%d)", int(k))
	}
}

// TraceEvent is one entry of the execution timeline (EnableTrace).
type TraceEvent struct {
	Cycle uint64
	Kind  TraceKind
	Slot  int
	Label string
	PC    int
}

func (e TraceEvent) String() string {
	return fmt.Sprintf("@%-12d %-8s slot%d %-18s pc=%d", e.Cycle, e.Kind, e.Slot, e.Label, e.PC)
}

// Latency returns the interrupt response latency (t1+t2) in cycles.
func (p *Preemption) Latency() uint64 { return p.BackupDoneCycle - p.RequestCycle }

// Cost returns the extra cycles the interrupt added (t2+t4).
func (p *Preemption) Cost() uint64 {
	return (p.BackupDoneCycle - p.BoundaryCycle) + p.ResumeCycles
}

type task struct {
	slot  int
	queue []*Request
	cur   *Request
	state State
	pc    int

	readySince uint64

	// SAVE-rewrite registers.
	saveValid bool
	saveID    uint32
	saveBytes uint32

	snapshot *accel.Snapshot // CPU-like backup
	lastPre  *Preemption     // record to charge resume cost to

	// parked is the interrupt method the slot's current backup was taken
	// with; resume replays that method's restore path even if a Scheduler
	// has since picked different methods for other switches.
	parked Policy
	// ckptPolicy is the method the salvage checkpoint was committed under.
	ckptPolicy Policy
	// fresh marks a slot dispatched by a Scheduler that has not yet executed
	// an instruction. The contention point skips fresh slots so every
	// scheduler decision is separated by at least one instruction of
	// progress — the termination guarantee under arbitrary policies.
	fresh bool

	// Backup integrity registers (armed only when IAU.Faults != nil).
	crcValid      bool
	backupCRC     uint32 // checksum of the parked backup blob
	bkLo, bkHi    int    // arena span the VI backup covers (CRC window)
	backupCorrupt bool   // metadata corruption for timing-only backups

	// Salvage checkpoint (armed only when IAU.SalvageCheckpoints is set):
	// the last committed resume point — the restore-group leader PC plus
	// the SAVE-rewrite and integrity registers as of that boundary. A
	// later watchdog kill republishes it as Completion.Salvage.
	ckptValid      bool
	ckptPC         int
	ckptSaveValid  bool
	ckptSaveID     uint32
	ckptSaveBytes  uint32
	ckptCRCValid   bool
	ckptCRC        uint32
	ckptLo, ckptHi int
}

type arrival struct {
	cycle uint64
	slot  int
	req   *Request
	seq   int
}

type arrivalHeap []arrival

func (h arrivalHeap) Len() int { return len(h) }
func (h arrivalHeap) Less(i, j int) bool {
	if h[i].cycle != h[j].cycle {
		return h[i].cycle < h[j].cycle
	}
	return h[i].seq < h[j].seq
}
func (h arrivalHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *arrivalHeap) Push(x interface{}) { *h = append(*h, x.(arrival)) }
func (h *arrivalHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// SlotReset records one watchdog kill: the slot's request exceeded the
// per-instruction cycle bound and the IAU reset the slot to recover.
type SlotReset struct {
	Cycle uint64
	Slot  int
	Label string
	PC    int
}

// FaultStats aggregates the IAU's fault detection and recovery activity.
// All fields stay zero unless Faults is armed (or WatchdogCycles trips on
// a genuinely oversized instruction).
type FaultStats struct {
	WatchdogKills     int    // hung slots killed and reset
	CorruptedRestores int    // corrupt backups detected at restore time
	Restarts          int    // victim re-executions after detection
	LostIRQs          int    // preemption boundaries missed to lost IRQs
	Stalls            int    // instruction stalls injected
	StallCycles       uint64 // total cycles those stalls cost
}

// Scheduler lets an external policy drive the IAU's task-switch decisions
// instead of the paper's static slot-priority rule. The IAU stays the
// mechanism owner: it still enforces boundary legality (canSwitch) for
// whatever method the scheduler picks, so a scheduler can change *when*
// and *how* switches happen but never make an illegal one. Any invalid
// answer (slot out of range, method the boundary does not allow) simply
// means "no switch here" — the IAU keeps executing the current task.
//
// Because every task owns its arena and every method's backup/restore
// pair is functionally lossless, scheduler decisions can affect timing
// only, never results; the verify fuzzer's PolicyPredictive axis proves
// this bit-exactly against the golden interpreter.
type Scheduler interface {
	// PickReady chooses which ready slot to dispatch when the accelerator
	// is free. ready is sorted ascending (static priority order); returning
	// a slot not in ready falls back to ready[0].
	PickReady(u *IAU, ready []int) int
	// Contend is consulted at every instruction boundary while a task runs
	// and other slots have runnable work. Returning preempt=false keeps the
	// current task running; otherwise cand is the slot to switch to and
	// method the interrupt mechanism to park the victim with. The switch
	// only fires if the victim's next instruction is a legal boundary for
	// that method.
	Contend(u *IAU, running int, ready []int) (cand int, preempt bool, method Policy)
	// TaskDone is invoked on every completion (before OnComplete) so the
	// scheduler can refine its cost model from the request's measured
	// cycle counters.
	TaskDone(u *IAU, slot int, req *Request)
}

// IAU is the simulated instruction arrangement unit plus its accelerator.
type IAU struct {
	Cfg    accel.Config
	Policy Policy
	Eng    *accel.Engine

	Now uint64

	// Faults, when non-nil, arms deterministic fault injection at the IAU's
	// sites (backup bit-flips, instruction stalls/hangs, lost IRQs). Nil —
	// the default — keeps every hot path a single pointer comparison.
	Faults *fault.Injector
	// SalvageCheckpoints, when set, records each slot's last committed
	// preemption boundary (VI: the Vir_SAVE just materialised; LBL: the
	// layer boundary) so a watchdog kill can salvage the victim's progress
	// as a restorable Completion.Salvage token instead of forcing
	// re-execution from scratch. CPU-like backups are released at resume,
	// so that policy never salvages. Off by default (zero cost).
	SalvageCheckpoints bool
	// Sched, when non-nil, replaces the static slot-priority rule with an
	// external policy for dispatch and preemption decisions (see Scheduler).
	// Nil — the default — preserves the paper's static behavior exactly.
	Sched Scheduler
	// WatchdogCycles bounds the cycles any single instruction may take.
	// When an instruction exceeds it (an injected hang, or a genuinely
	// runaway transfer) the IAU charges the bound, kills the slot's request,
	// resets the slot, and reports the corpse through OnFail. Zero disables
	// the watchdog: a hung instruction is then a fatal simulation error.
	WatchdogCycles uint64

	// OnComplete, when set, is invoked after every completion; it may submit
	// follow-up requests (closed-loop workloads such as continuous PR).
	OnComplete func(Completion)
	// OnDrop, when set, is invoked when a DropIfBusy request is discarded.
	OnDrop func(slot int, req *Request)
	// OnPreempt, when set, is invoked right after a preemption is recorded
	// (the victim is in the Preempted state); a multi-accelerator dispatcher
	// may steal the victim from here and resume it elsewhere.
	OnPreempt func(*Preemption)
	// OnFail, when set, receives every watchdog-killed request. The handler
	// may Resubmit the request (bounded retry) or shed it; the slot itself
	// is already reset and schedulable again.
	OnFail func(Completion, error)

	Completions []Completion
	Preemptions []*Preemption
	Resets      []SlotReset
	Fault       FaultStats

	// EnableTrace records a timeline of start/preempt/resume/complete/drop
	// events in Trace.
	EnableTrace bool
	Trace       []TraceEvent

	// Tracer, when non-nil, receives the cycle-accurate event stream (spans
	// for every instruction class, marks for every scheduling action) that
	// feeds the Perfetto timeline and metrics snapshot. Attach it with
	// AttachTracer so the engine shares it. Nil — the default — costs one
	// pointer comparison per site.
	Tracer *trace.Tracer

	BusyCycles uint64 // cycles the accelerator executed instructions
	IdleCycles uint64

	slots    [NumSlots]*task
	arrivals arrivalHeap
	seq      int
	running  int // slot currently executing, or -1
}

// New creates an IAU for the given accelerator configuration and policy.
func New(cfg accel.Config, policy Policy) *IAU {
	u := &IAU{Cfg: cfg, Policy: policy, Eng: accel.NewEngine(cfg), running: -1}
	for i := range u.slots {
		u.slots[i] = &task{slot: i, state: Idle}
	}
	return u
}

// AttachTracer wires a cycle-accurate tracer into the IAU and its engine.
// Pass nil to detach. The IAU owns simulated time, so it keeps tr.Now
// current for the engine's clock-less emissions.
func (u *IAU) AttachTracer(tr *trace.Tracer) {
	u.Tracer = tr
	u.Eng.Trace = tr
}

// syncTrace publishes the current cycle to the shared tracer so engine
// emissions during the next Exec are timestamped correctly.
func (u *IAU) syncTrace() {
	if u.Tracer != nil {
		u.Tracer.Now = u.Now
	}
}

// Submit enqueues a request on a priority slot at the current cycle.
func (u *IAU) Submit(slot int, req *Request) error {
	return u.SubmitAt(slot, req, u.Now)
}

// SubmitAt enqueues a request that arrives at the given cycle (>= Now).
func (u *IAU) SubmitAt(slot int, req *Request, cycle uint64) error {
	if slot < 0 || slot >= NumSlots {
		return fmt.Errorf("iau: slot %d out of range [0,%d)", slot, NumSlots)
	}
	if req == nil || req.Prog == nil {
		return fmt.Errorf("iau: nil request/program")
	}
	if cycle < u.Now {
		return fmt.Errorf("iau: submission at cycle %d is in the past (now %d)", cycle, u.Now)
	}
	req.SubmitCycle = cycle
	u.seq++
	heap.Push(&u.arrivals, arrival{cycle: cycle, slot: slot, req: req, seq: u.seq})
	return nil
}

// Pending reports whether any work (queued, ready, or in flight) remains.
func (u *IAU) Pending() bool {
	if len(u.arrivals) > 0 {
		return true
	}
	for _, t := range u.slots {
		if t.state != Idle || len(t.queue) > 0 || t.cur != nil {
			return true
		}
	}
	return false
}

func (u *IAU) admit() {
	for len(u.arrivals) > 0 && u.arrivals[0].cycle <= u.Now {
		a := heap.Pop(&u.arrivals).(arrival)
		t := u.slots[a.slot]
		if a.req.DropIfBusy && (t.cur != nil || len(t.queue) > 0) {
			u.trace(TraceDrop, a.slot, a.req.Label, 0)
			u.Tracer.Mark(trace.KindDrop, a.slot, a.cycle, 0, a.req.Label)
			if u.OnDrop != nil {
				u.OnDrop(a.slot, a.req)
			}
			continue
		}
		u.Tracer.Mark(trace.KindSubmit, a.slot, a.cycle, 0, a.req.Label)
		t.queue = append(t.queue, a.req)
		if t.state == Idle {
			t.state = Ready
			t.readySince = a.cycle
		}
	}
}

// bestReady returns the highest-priority slot with runnable work, or -1.
func (u *IAU) bestReady() int {
	for i, t := range u.slots {
		if t.state == Ready || t.state == Running || t.state == Preempted {
			return i
		}
	}
	return -1
}

// Run advances the simulation until no work remains or the horizon cycle is
// reached, whichever comes first.
func (u *IAU) Run(horizon uint64) error {
	for {
		u.admit()
		if u.Now >= horizon {
			return nil
		}
		best := u.bestReady()
		if best == -1 {
			if len(u.arrivals) == 0 {
				return nil
			}
			next := u.arrivals[0].cycle
			if next > horizon {
				u.IdleCycles += horizon - u.Now
				u.Now = horizon
				return nil
			}
			u.IdleCycles += next - u.Now
			u.Now = next
			continue
		}
		if u.running == -1 {
			pick := best
			if u.Sched != nil {
				if ready := u.readySlots(-1); len(ready) > 1 {
					if s := u.Sched.PickReady(u, ready); slotIn(s, ready) {
						pick = s
					}
				}
			}
			if err := u.dispatch(pick); err != nil {
				return err
			}
			continue
		}
		if cand, pre, method := u.contend(best); pre {
			if u.Faults != nil && u.Faults.Hit(fault.SiteIRQLost) {
				// The preemption IRQ was lost at this boundary: the victim
				// runs one more instruction and the IAU retries at the next
				// legal boundary (bounded extra latency, no hang).
				u.Fault.LostIRQs++
				if err := u.execOne(u.slots[u.running]); err != nil {
					return err
				}
				continue
			}
			if err := u.preempt(u.running, cand, method); err != nil {
				return err
			}
			continue
		}
		if err := u.execOne(u.slots[u.running]); err != nil {
			return err
		}
	}
}

// readySlots returns the runnable slots (Ready or Preempted) in static
// priority order, excluding the given slot (-1 excludes none).
func (u *IAU) readySlots(exclude int) []int {
	var out []int
	for i, t := range u.slots {
		if i == exclude {
			continue
		}
		if t.state == Ready || t.state == Preempted {
			out = append(out, i)
		}
	}
	return out
}

func slotIn(s int, set []int) bool {
	for _, v := range set {
		if v == s {
			return true
		}
	}
	return false
}

// contend decides whether the running task should be preempted, by whom,
// and with which interrupt method. With no Scheduler attached it applies
// the paper's static rule: a strictly higher-priority slot preempts at the
// next boundary legal under the IAU's base policy. With a Scheduler, the
// policy proposes (victim is always the running slot, but it chooses the
// preemptor and the method) and the IAU disposes: illegal boundaries and
// invalid answers mean no switch.
func (u *IAU) contend(best int) (cand int, preempt bool, method Policy) {
	rt := u.slots[u.running]
	if u.Sched == nil {
		if best < u.running && u.canSwitch(rt, u.Policy) {
			return best, true, u.Policy
		}
		return 0, false, PolicyNone
	}
	if rt.fresh {
		// A scheduler-dispatched slot runs at least one instruction before
		// the next decision; otherwise a pathological policy could ping-pong
		// two slots forever without progress.
		return 0, false, PolicyNone
	}
	ready := u.readySlots(u.running)
	if len(ready) == 0 {
		return 0, false, PolicyNone
	}
	c, pre, m := u.Sched.Contend(u, u.running, ready)
	if !pre || !slotIn(c, ready) {
		return 0, false, PolicyNone
	}
	switch m {
	case PolicyVI, PolicyLayerByLayer, PolicyCPULike:
	default:
		return 0, false, PolicyNone
	}
	if !u.canSwitch(rt, m) {
		return 0, false, PolicyNone
	}
	return c, true, m
}

// RunAll drives the simulation to completion of all submitted work.
func (u *IAU) RunAll() error {
	for u.Pending() {
		if err := u.Run(^uint64(0)); err != nil {
			return err
		}
		if !u.Pending() {
			return nil
		}
	}
	return nil
}

// canSwitch reports whether the running task's next instruction is a legal
// switch boundary under the given interrupt method.
func (u *IAU) canSwitch(t *task, m Policy) bool {
	switch m {
	case PolicyCPULike:
		return true
	case PolicyVI:
		ins := t.cur.Prog.Instrs
		in := ins[t.pc]
		if in.Op == isa.OpVirSave {
			return true
		}
		if in.Op == isa.OpVirLoadD {
			// A lone Vir_LOAD_D (post-SAVE point) — but only the group
			// leader. One right after a Vir_SAVE is mid-group (switching
			// there would lose the unsaved results whose backup was already
			// skipped), and one right after another Vir_LOAD_D (Add layers
			// restore two inputs) is mid-group too: resuming from it would
			// skip the first input's restore.
			return t.pc == 0 || (ins[t.pc-1].Op != isa.OpVirSave && ins[t.pc-1].Op != isa.OpVirLoadD)
		}
		return false
	case PolicyLayerByLayer:
		ins := t.cur.Prog.Instrs
		if t.pc == 0 || ins[t.pc].Op == isa.OpEnd {
			return false // about to finish anyway
		}
		return ins[t.pc].Layer != ins[t.pc-1].Layer
	default:
		return false
	}
}

// dispatch starts or resumes the given slot.
func (u *IAU) dispatch(slot int) error {
	t := u.slots[slot]
	switch t.state {
	case Ready:
		t.cur = t.queue[0]
		t.queue = t.queue[1:]
		t.pc = 0
		t.cur.StartCycle = u.Now
		t.saveValid = false
		t.ckptValid = false
		u.Eng.Invalidate()
		u.trace(TraceStart, slot, t.cur.Label, 0)
		u.Tracer.Mark(trace.KindStart, slot, u.Now, 0, t.cur.Label)
	case Preempted:
		if u.restoreCorrupt(t) {
			// The backup blob failed its checksum: the parked state is
			// garbage. Detected, not trusted — discard it and re-execute the
			// request from its last committed boundary (the program start;
			// every intermediate output is rewritten deterministically, so
			// the final arena matches a fault-free run bit-for-bit).
			u.Fault.CorruptedRestores++
			u.Fault.Restarts++
			t.cur.Corrupted++
			t.cur.Restarts++
			u.restartVictim(t)
			u.trace(TraceRestart, slot, t.cur.Label, 0)
			u.Tracer.Mark(trace.KindRestart, slot, u.Now, 0, t.cur.Label)
		} else {
			// The resume mark lands before the restore transfers, so the
			// metrics' preempted-wait window excludes restore work (counted
			// separately as RestoreCycles).
			u.Tracer.Mark(trace.KindResume, slot, u.Now, 0, t.cur.Label)
			if err := u.resume(t); err != nil {
				return err
			}
			u.trace(TraceResume, slot, t.cur.Label, t.pc)
		}
	default:
		return fmt.Errorf("iau: dispatch of slot %d in state %d", slot, t.state)
	}
	t.state = Running
	t.fresh = true
	u.running = slot
	return nil
}

// restoreCorrupt verifies the slot's parked backup against the checksum
// recorded when the backup transfer completed. It consumes the integrity
// registers either way.
func (u *IAU) restoreCorrupt(t *task) bool {
	corrupt := t.backupCorrupt
	if t.crcValid {
		switch {
		case t.snapshot != nil:
			corrupt = corrupt || t.snapshot.Checksum() != t.backupCRC
		case t.cur.Arena != nil && t.bkHi > t.bkLo:
			crc := crc32.Checksum(t.cur.Arena[t.bkLo:t.bkHi], crcTable)
			corrupt = corrupt || crc != t.backupCRC
		}
	}
	t.crcValid = false
	t.backupCorrupt = false
	return corrupt
}

// restartVictim resets a slot whose backup was detected corrupt so its
// request re-executes from the beginning through the normal Ready path.
func (u *IAU) restartVictim(t *task) {
	if t.snapshot != nil {
		u.Eng.ReleaseSnapshot(t.snapshot)
		t.snapshot = nil
	}
	t.pc = 0
	t.saveValid = false
	t.ckptValid = false
	t.lastPre = nil
	u.Eng.Invalidate()
}

// resume pays the restore cost of the method the task was parked with and
// re-establishes on-chip state.
func (u *IAU) resume(t *task) error {
	switch t.parked {
	case PolicyCPULike:
		u.Eng.Restore(t.snapshot)
		// The snapshot's buffers go back to the engine's free list so the
		// next CPU-like backup reuses them instead of allocating.
		u.Eng.ReleaseSnapshot(t.snapshot)
		t.snapshot = nil
		c := u.Cfg.XferCycles(uint32(u.Cfg.TotalBufferBytes()))
		reg := u.Tracer.BeginAt(trace.KindRestore, t.slot, u.Now, uint64(u.Cfg.TotalBufferBytes()), "cache-refill")
		u.advance(t.cur, c)
		reg.EndAt(u.Now)
		t.cur.InterruptCost += c
		if t.lastPre != nil {
			t.lastPre.ResumeCycles += c
			t.lastPre.ResumeBytes += uint64(u.Cfg.TotalBufferBytes())
			t.lastPre.Resumed = true
		}
	case PolicyVI:
		u.Eng.Invalidate()
		ins := t.cur.Prog.Instrs
		for t.pc < len(ins) && ins[t.pc].Op == isa.OpVirLoadD {
			in := ins[t.pc]
			u.syncTrace()
			c, err := u.Eng.Exec(t.cur.Arena, t.cur.Prog, in, 0)
			if err != nil {
				return fmt.Errorf("iau: slot %d resume pc %d: %w", t.slot, t.pc, err)
			}
			reg := u.Tracer.BeginAt(trace.KindRestore, t.slot, u.Now, uint64(in.Len), "vir_load_d")
			u.advance(t.cur, c)
			reg.EndAt(u.Now)
			t.cur.InterruptCost += c
			if t.lastPre != nil {
				t.lastPre.ResumeCycles += c
				t.lastPre.ResumeBytes += uint64(in.Len)
			}
			t.pc++
		}
		if t.lastPre != nil {
			t.lastPre.Resumed = true
		}
	default:
		// Layer-by-layer: next layer reloads everything through its own
		// ordinary LOAD instructions; nothing to restore.
		u.Eng.Invalidate()
		if t.lastPre != nil {
			t.lastPre.Resumed = true
		}
	}
	return nil
}

// preempt switches from the running victim to the chosen preemptor,
// performing the given method's backup at the already-reached boundary.
func (u *IAU) preempt(victim, preemptor int, method Policy) error {
	vt := u.slots[victim]
	rec := &Preemption{
		Victim: victim, Preemptor: preemptor,
		Method:        method,
		RequestCycle:  u.slots[preemptor].readySince,
		BoundaryCycle: u.Now,
		VictimPC:      vt.pc,
	}
	if in := vt.cur.Prog.Instrs[vt.pc]; in.Op != isa.OpEnd {
		rec.VictimLayer = vt.cur.Prog.Layers[in.Layer].Name
	}
	switch method {
	case PolicyCPULike:
		vt.snapshot = u.Eng.Snapshot()
		c := u.Cfg.XferCycles(uint32(u.Cfg.TotalBufferBytes()))
		u.Tracer.Span(trace.KindBackup, victim, u.Now, c, uint64(u.Cfg.TotalBufferBytes()), "cache-spill")
		u.advance(vt.cur, c)
		vt.cur.InterruptCost += c
		rec.BackupBytes = uint64(u.Cfg.TotalBufferBytes())
		if u.Faults != nil {
			vt.backupCRC = vt.snapshot.Checksum()
			vt.crcValid = true
			if u.Faults.Hit(fault.SiteBackup) {
				bits := vt.snapshot.PayloadBits()
				if bits == 0 || !vt.snapshot.FlipBit(u.Faults.Pick(fault.SiteBackup, bits)) {
					vt.backupCorrupt = true // timing-only: corruption as metadata
				}
			}
		}
	case PolicyVI:
		// The boundary stops the MAC array; the backup transfer cannot hide
		// under compute.
		u.Eng.DrainPipeline()
		ins := vt.cur.Prog.Instrs
		if ins[vt.pc].Op == isa.OpVirSave {
			in := ins[vt.pc]
			var skip uint32
			if vt.saveValid && vt.saveID == in.SaveID {
				skip = vt.saveBytes
			}
			u.syncTrace()
			c, err := u.Eng.Exec(vt.cur.Arena, vt.cur.Prog, in, skip)
			if err != nil {
				return fmt.Errorf("iau: slot %d backup pc %d: %w", victim, vt.pc, err)
			}
			if skip > 0 {
				u.Tracer.Mark(trace.KindSaveRewrite, victim, u.Now, uint64(skip), vt.cur.Label)
			}
			u.Tracer.Span(trace.KindBackup, victim, u.Now, c, uint64(in.Len-skip), "vir_save")
			u.advance(vt.cur, c)
			vt.cur.InterruptCost += c
			rec.BackupBytes = uint64(in.Len - skip)
			vt.saveValid = true
			vt.saveID = in.SaveID
			vt.saveBytes = in.Len
			if u.Faults != nil || u.SalvageCheckpoints {
				u.armBackupCheck(vt, in)
			}
			vt.pc++ // resume at the following Vir_LOAD_D restores
		}
	case PolicyLayerByLayer:
		// No backup at a layer boundary.
	default:
		return fmt.Errorf("iau: policy %v cannot preempt", method)
	}
	vt.parked = method
	if u.SalvageCheckpoints && (method == PolicyVI || method == PolicyLayerByLayer) {
		// Commit the boundary just reached as the slot's salvage
		// checkpoint. The CRC registers were (re)armed pre-fault-draw, so a
		// backup bit-flip injected after the checksum is still detected if
		// this checkpoint is ever salvaged.
		vt.ckptValid = true
		vt.ckptPC = vt.pc
		vt.ckptPolicy = method
		vt.ckptSaveValid, vt.ckptSaveID, vt.ckptSaveBytes = vt.saveValid, vt.saveID, vt.saveBytes
		vt.ckptCRCValid, vt.ckptCRC = vt.crcValid, vt.backupCRC
		vt.ckptLo, vt.ckptHi = vt.bkLo, vt.bkHi
	}
	rec.BackupDoneCycle = u.Now
	vt.state = Preempted
	vt.cur.Preemptions++
	vt.lastPre = rec
	u.trace(TracePreempt, victim, vt.cur.Label, vt.pc)
	// Arg carries the backup bytes; the preempted-wait window opens here
	// (backup done) and closes at the matching resume mark.
	u.Tracer.Mark(trace.KindPreempt, victim, u.Now, rec.BackupBytes, vt.cur.Label)
	u.Preemptions = append(u.Preemptions, rec)
	u.Eng.Invalidate()
	u.running = -1
	if u.OnPreempt != nil {
		u.OnPreempt(rec)
	}
	return nil
}

// ResumeToken carries a preempted request's scheduling state so it can be
// resumed on a different IAU. This works because every interrupt policy's
// backup lands in DDR, which multi-accelerator MPSoC systems share: the
// paper's future-work direction (multi-core multi-tasking) gets task
// migration almost for free from the VI mechanism.
type ResumeToken struct {
	Req       *Request
	Policy    Policy
	pc        int
	saveValid bool
	saveID    uint32
	saveBytes uint32
	snapshot  *accel.Snapshot

	// Backup integrity state travels with the token: the destination IAU
	// verifies the checksum before resuming, so corruption during the DDR
	// round trip between accelerators is detected exactly like a local one.
	crcValid      bool
	backupCRC     uint32
	bkLo, bkHi    int
	backupCorrupt bool

	// consumed marks a token that already resumed somewhere; a second
	// InjectPreempted would fork the request, so it is rejected.
	consumed bool
}

// Checksum returns the token's recorded backup CRC32-C and whether one was
// computed (fault injection armed and a data-bearing backup existed).
func (tok *ResumeToken) Checksum() (uint32, bool) { return tok.backupCRC, tok.crcValid }

// BatchIndex returns the batch element the parked request will resume on:
// the Bat field of the first real (non-virtual) instruction at or after the
// token's resume PC. Zero for single-image plans; for batched plans it
// exposes where inside the batch iteration the preemption parked the task
// (schedulers migrating work can use it to estimate remaining per-element
// progress).
func (tok *ResumeToken) BatchIndex() int {
	if tok.Req == nil || tok.Req.Prog == nil {
		return 0
	}
	ins := tok.Req.Prog.Instrs
	for pc := tok.pc; pc >= 0 && pc < len(ins); pc++ {
		if ins[pc].Op == isa.OpEnd {
			return 0
		}
		if !ins[pc].Op.Virtual() {
			return int(ins[pc].Bat)
		}
	}
	return 0
}

// Registers is the architectural per-slot register view of Fig. 3: the
// instruction pointer, the SAVE-rewrite status registers, and the slot's
// scheduling state. Exposed for debugging and the inca-sim inspector.
type Registers struct {
	State      State
	Label      string // current request, "" when idle
	InstrAddr  int    // next instruction index in the task's stream
	SaveValid  bool
	SaveID     uint32
	SaveLength uint32
	QueueDepth int
}

// Registers returns the architectural state of one task slot.
func (u *IAU) Registers(slot int) Registers {
	if slot < 0 || slot >= NumSlots {
		return Registers{}
	}
	t := u.slots[slot]
	r := Registers{
		State:      t.state,
		InstrAddr:  t.pc,
		SaveValid:  t.saveValid,
		SaveID:     t.saveID,
		SaveLength: t.saveBytes,
		QueueDepth: len(t.queue),
	}
	if t.cur != nil {
		r.Label = t.cur.Label
	}
	return r
}

// ReadySince returns the cycle at which the slot last became runnable
// (Ready or Preempted); zero for idle slots. Schedulers use it as the
// waiting-time origin for token accrual.
func (u *IAU) ReadySince(slot int) uint64 {
	if slot < 0 || slot >= NumSlots {
		return 0
	}
	return u.slots[slot].readySince
}

// SlotRequest returns the request a slot would run next: its in-flight
// request if one exists, else the head of its queue, else nil.
func (u *IAU) SlotRequest(slot int) *Request {
	if slot < 0 || slot >= NumSlots {
		return nil
	}
	t := u.slots[slot]
	if t.cur != nil {
		return t.cur
	}
	if len(t.queue) > 0 {
		return t.queue[0]
	}
	return nil
}

// SlotPC returns the slot's stream position (the next instruction index),
// or -1 when the slot has no in-flight request. A scheduler's remaining-
// work estimate starts from here.
func (u *IAU) SlotPC(slot int) int {
	if slot < 0 || slot >= NumSlots {
		return -1
	}
	t := u.slots[slot]
	if t.cur == nil {
		return -1
	}
	return t.pc
}

// SlotFree reports whether a slot has no current request, an empty queue,
// and no submission waiting in the arrival heap (an InjectPreempted target).
func (u *IAU) SlotFree(slot int) bool {
	if slot < 0 || slot >= NumSlots {
		return false
	}
	t := u.slots[slot]
	return t.state == Idle && t.cur == nil && len(t.queue) == 0 && !u.slotHasArrivals(slot)
}

// slotHasArrivals reports whether any not-yet-admitted submission targets
// the slot.
func (u *IAU) slotHasArrivals(slot int) bool {
	for _, a := range u.arrivals {
		if a.slot == slot {
			return true
		}
	}
	return false
}

// PeekPreempted returns the slot's preempted request without removing it,
// or nil.
func (u *IAU) PeekPreempted(slot int) *Request {
	if slot < 0 || slot >= NumSlots {
		return nil
	}
	t := u.slots[slot]
	if t.state != Preempted {
		return nil
	}
	return t.cur
}

// StealPreempted removes the slot's preempted request and returns a token
// that InjectPreempted can install on another IAU of the same policy.
func (u *IAU) StealPreempted(slot int) (*ResumeToken, error) {
	if slot < 0 || slot >= NumSlots {
		return nil, fmt.Errorf("iau: slot %d out of range", slot)
	}
	t := u.slots[slot]
	if t.state != Preempted || t.cur == nil {
		return nil, fmt.Errorf("iau: slot %d has no preempted request to steal", slot)
	}
	tok := &ResumeToken{
		Req: t.cur, Policy: t.parked,
		pc: t.pc, saveValid: t.saveValid, saveID: t.saveID, saveBytes: t.saveBytes,
		snapshot: t.snapshot,
		crcValid: t.crcValid, backupCRC: t.backupCRC,
		bkLo: t.bkLo, bkHi: t.bkHi, backupCorrupt: t.backupCorrupt,
	}
	t.cur = nil
	t.snapshot = nil
	t.lastPre = nil
	t.saveValid = false
	t.crcValid = false
	t.backupCorrupt = false
	t.ckptValid = false
	if len(t.queue) > 0 {
		t.state = Ready
		t.readySince = u.Now
	} else {
		t.state = Idle
	}
	return tok, nil
}

// InjectPreempted installs a stolen request on an idle slot; it will resume
// through the policy's normal restore path (Vir_LOAD_D replays, snapshot
// refill) when the slot is dispatched.
func (u *IAU) InjectPreempted(slot int, tok *ResumeToken) error {
	if slot < 0 || slot >= NumSlots {
		return fmt.Errorf("iau: slot %d out of range", slot)
	}
	if tok == nil || tok.Req == nil {
		return fmt.Errorf("iau: nil resume token")
	}
	if tok.consumed {
		return fmt.Errorf("iau: resume token for %q already consumed (double resume would fork the request)", tok.Req.Label)
	}
	if tok.Policy != u.Policy && u.Sched == nil {
		// A Scheduler-driven IAU handles any parked method (resume follows
		// the token's method, not the base policy); a static IAU only
		// understands its own.
		return fmt.Errorf("iau: token from policy %v cannot resume under %v", tok.Policy, u.Policy)
	}
	t := u.slots[slot]
	if t.state != Idle || t.cur != nil || len(t.queue) > 0 || u.slotHasArrivals(slot) {
		return fmt.Errorf("iau: slot %d busy; cannot inject", slot)
	}
	t.cur = tok.Req
	t.pc = tok.pc
	t.parked = tok.Policy
	t.saveValid = tok.saveValid
	t.saveID = tok.saveID
	t.saveBytes = tok.saveBytes
	t.snapshot = tok.snapshot
	t.crcValid = tok.crcValid
	t.backupCRC = tok.backupCRC
	t.bkLo, t.bkHi = tok.bkLo, tok.bkHi
	t.backupCorrupt = tok.backupCorrupt
	if u.SalvageCheckpoints && (tok.Policy == PolicyVI || tok.Policy == PolicyLayerByLayer) {
		// The token is itself a committed checkpoint: re-arm it locally so
		// a post-migration watchdog kill can still salvage the request.
		t.ckptValid = true
		t.ckptPC = tok.pc
		t.ckptPolicy = tok.Policy
		t.ckptSaveValid, t.ckptSaveID, t.ckptSaveBytes = tok.saveValid, tok.saveID, tok.saveBytes
		t.ckptCRCValid, t.ckptCRC = tok.crcValid, tok.backupCRC
		t.ckptLo, t.ckptHi = tok.bkLo, tok.bkHi
	}
	t.state = Preempted
	t.readySince = u.Now
	tok.consumed = true
	return nil
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// armBackupCheck checksums the arena span a Vir_SAVE backup just wrote and
// draws the DDR bit-flip fault for it. Nothing else writes the victim's
// arena while it is parked (arenas are per-request), so a later checksum
// mismatch over the same span can only mean the backup corrupted in DDR.
func (u *IAU) armBackupCheck(vt *task, in isa.Instruction) {
	vt.crcValid = false
	if vt.cur.Arena != nil {
		lo, hi := u.backupSpan(vt.cur.Prog, in)
		if hi > lo && hi <= len(vt.cur.Arena) {
			vt.bkLo, vt.bkHi = lo, hi
			vt.backupCRC = crc32.Checksum(vt.cur.Arena[lo:hi], crcTable)
			vt.crcValid = true
		}
	}
	if u.Faults != nil && u.Faults.Hit(fault.SiteBackup) {
		if vt.crcValid {
			bit := u.Faults.Pick(fault.SiteBackup, uint64(vt.bkHi-vt.bkLo)*8)
			vt.cur.Arena[vt.bkLo+int(bit/8)] ^= 1 << (bit % 8)
		} else {
			vt.backupCorrupt = true // timing-only: corruption as metadata
		}
	}
}

// backupSpan returns the contiguous arena byte range covering a
// (Vir_)SAVE's output window: channels [InG*ParaOut, (OutG+1)*ParaOut) of
// rows [Row0, Row0+Rows) in the instruction's batch element's output plane.
// The per-channel writes are strided, so the span also contains untouched
// gap bytes — harmless, since the whole span is stable while the victim is
// parked.
func (u *IAU) backupSpan(p *isa.Program, in isa.Instruction) (lo, hi int) {
	l := &p.Layers[in.Layer]
	rows := int(in.Rows)
	if rows == 0 {
		return 0, 0
	}
	c0 := int(in.InG) * u.Cfg.ParaOut
	endC := (int(in.OutG) + 1) * u.Cfg.ParaOut
	if endC > l.OutC {
		endC = l.OutC
	}
	if endC <= c0 {
		return 0, 0
	}
	base := int(l.OutAddr) + int(in.Bat)*l.OutPlane()
	lo = base + (c0*l.OutH+int(in.Row0))*l.OutW
	hi = base + ((endC-1)*l.OutH+int(in.Row0))*l.OutW + rows*l.OutW
	return lo, hi
}

// execOne runs the next instruction of the running task.
func (u *IAU) execOne(t *task) error {
	t.fresh = false
	ins := t.cur.Prog.Instrs
	in := ins[t.pc]
	if in.Op == isa.OpEnd {
		u.complete(t)
		return nil
	}
	if in.Op.Virtual() {
		// Discarded by the IAU: costs only the fetch.
		c := uint64(u.Cfg.FetchCycles)
		u.Tracer.Span(trace.KindFetch, t.slot, u.Now, c, 0, in.Op.String())
		u.Now += c
		t.cur.FetchCycles += c
		t.pc++
		return nil
	}
	var skip uint32
	if in.Op == isa.OpSave && t.saveValid && t.saveID == in.SaveID {
		skip = t.saveBytes
	}
	u.syncTrace()
	c, err := u.Eng.Exec(t.cur.Arena, t.cur.Prog, in, skip)
	if err != nil {
		return fmt.Errorf("iau: slot %d pc %d: %w", t.slot, t.pc, err)
	}
	if u.Faults != nil {
		if u.Faults.Hit(fault.SiteStall) {
			s := u.Faults.StallCycles
			u.Tracer.Span(trace.KindStall, t.slot, u.Now, s, 0, in.Op.String())
			u.Now += s
			t.cur.StallCycles += s
			u.Fault.Stalls++
			u.Fault.StallCycles += s
		}
		if u.Faults.Hit(fault.SiteHang) {
			// The instruction never completes; model as infinite cycles and
			// let the watchdog (or the error path) take over.
			c = ^uint64(0)
		}
	}
	if u.WatchdogCycles > 0 && c > u.WatchdogCycles {
		return u.watchdogKill(t)
	}
	if c == ^uint64(0) {
		return fmt.Errorf("iau: slot %d pc %d (%s): instruction hung with no watchdog armed", t.slot, t.pc, t.cur.Label)
	}
	if in.Op == isa.OpSave {
		t.saveValid = false
	}
	if u.Tracer != nil {
		kind := trace.KindCalc
		switch in.Op {
		case isa.OpLoadW, isa.OpLoadD, isa.OpSave:
			kind = trace.KindXfer
		}
		if skip > 0 {
			u.Tracer.Mark(trace.KindSaveRewrite, t.slot, u.Now, uint64(skip), t.cur.Label)
		}
		u.Tracer.Span(kind, t.slot, u.Now, c, uint64(skip), in.Op.String())
	}
	u.advance(t.cur, c)
	t.pc++
	return nil
}

// watchdogKill recovers a hung slot: the watchdog bound is charged as dead
// time, the request is failed out, and the slot is reset so queued (and
// retried) work can run. The corpse is reported through OnFail.
func (u *IAU) watchdogKill(t *task) error {
	u.Now += u.WatchdogCycles
	u.IdleCycles += u.WatchdogCycles // hung, not doing useful work
	req := t.cur
	req.Failed = true
	req.DoneCycle = u.Now
	u.Fault.WatchdogKills++
	u.Resets = append(u.Resets, SlotReset{Cycle: u.Now, Slot: t.slot, Label: req.Label, PC: t.pc})
	u.trace(TraceKill, t.slot, req.Label, t.pc)
	u.Tracer.Mark(trace.KindKill, t.slot, u.Now, uint64(t.pc), req.Label)
	var salvage *ResumeToken
	if u.SalvageCheckpoints && t.ckptValid {
		salvage = &ResumeToken{
			Req: req, Policy: t.ckptPolicy,
			pc: t.ckptPC, saveValid: t.ckptSaveValid, saveID: t.ckptSaveID, saveBytes: t.ckptSaveBytes,
			crcValid: t.ckptCRCValid, backupCRC: t.ckptCRC,
			bkLo: t.ckptLo, bkHi: t.ckptHi,
		}
	}
	if t.snapshot != nil {
		u.Eng.ReleaseSnapshot(t.snapshot)
		t.snapshot = nil
	}
	t.cur = nil
	t.saveValid = false
	t.lastPre = nil
	t.crcValid = false
	t.backupCorrupt = false
	t.ckptValid = false
	if len(t.queue) > 0 {
		t.state = Ready
		t.readySince = u.Now
	} else {
		t.state = Idle
	}
	u.running = -1
	u.Eng.Invalidate()
	if u.OnFail != nil {
		u.OnFail(Completion{Slot: t.slot, Req: req, Salvage: salvage},
			fmt.Errorf("iau: slot %d watchdog: %q exceeded %d cycles at pc %d", t.slot, req.Label, u.WatchdogCycles, t.pc))
	}
	return nil
}

// ResumeSalvaged installs a watchdog-salvage token (Completion.Salvage)
// on a free slot of this IAU: the failed flag is cleared, the retry is
// counted, and the request resumes from its salvaged checkpoint through
// the normal Preempted dispatch path. The checkpoint CRC is re-verified
// there, so a stale or corrupted checkpoint degrades to the detected
// restart-from-scratch path — never to silent corruption.
func (u *IAU) ResumeSalvaged(slot int, tok *ResumeToken) error {
	if tok == nil || tok.Req == nil {
		return fmt.Errorf("iau: nil salvage token")
	}
	if !tok.Req.Failed {
		return fmt.Errorf("iau: salvage resume of a request that has not failed")
	}
	if err := u.InjectPreempted(slot, tok); err != nil {
		return err
	}
	tok.Req.Failed = false
	tok.Req.Retries++
	return nil
}

// Resubmit re-enqueues a watchdog-killed request for a bounded retry. The
// original SubmitCycle is preserved so response latency (and deadline
// accounting) spans every attempt.
func (u *IAU) Resubmit(slot int, req *Request, cycle uint64) error {
	if req == nil || !req.Failed {
		return fmt.Errorf("iau: resubmit of a request that has not failed")
	}
	orig := req.SubmitCycle
	req.Failed = false
	req.Retries++
	if err := u.SubmitAt(slot, req, cycle); err != nil {
		req.Failed = true
		req.Retries--
		return err
	}
	req.SubmitCycle = orig
	return nil
}

// WatchdogBound returns a per-instruction cycle bound that no legitimate
// instruction of the given programs can exceed: twice the largest single
// modelled instruction cost (MAC burst or full-length transfer). Armed as
// IAU.WatchdogCycles it converts injected hangs into bounded-latency slot
// resets without ever killing healthy work.
func WatchdogBound(cfg accel.Config, progs ...*isa.Program) uint64 {
	var worst uint64
	for _, p := range progs {
		if p == nil {
			continue
		}
		for _, in := range p.Instrs {
			var c uint64
			switch in.Op {
			case isa.OpLoadW, isa.OpLoadD, isa.OpSave, isa.OpVirSave, isa.OpVirLoadD:
				c = cfg.XferCycles(in.Len)
			case isa.OpEnd:
				continue
			default:
				c = cfg.InstrCycles(p, in)
			}
			if c > worst {
				worst = c
			}
		}
	}
	if worst == 0 {
		worst = 1
	}
	return 2 * worst
}

func (u *IAU) advance(req *Request, cycles uint64) {
	u.Now += cycles
	u.BusyCycles += cycles
	req.ExecCycles += cycles
}

func (u *IAU) trace(kind TraceKind, slot int, label string, pc int) {
	if !u.EnableTrace {
		return
	}
	u.Trace = append(u.Trace, TraceEvent{Cycle: u.Now, Kind: kind, Slot: slot, Label: label, PC: pc})
}

func (u *IAU) complete(t *task) {
	t.cur.DoneCycle = u.Now
	u.trace(TraceComplete, t.slot, t.cur.Label, t.pc)
	u.Tracer.Mark(trace.KindComplete, t.slot, u.Now, u.Now-t.cur.SubmitCycle, t.cur.Label)
	comp := Completion{Slot: t.slot, Req: t.cur}
	u.Completions = append(u.Completions, comp)
	if u.Sched != nil {
		u.Sched.TaskDone(u, t.slot, t.cur)
	}
	t.cur = nil
	t.saveValid = false
	t.lastPre = nil
	t.crcValid = false
	t.backupCorrupt = false
	t.ckptValid = false
	if len(t.queue) > 0 {
		t.state = Ready
		t.readySince = u.Now
	} else {
		t.state = Idle
	}
	u.running = -1
	u.Eng.Invalidate()
	if u.OnComplete != nil {
		u.OnComplete(comp)
	}
}
