package iau_test

import (
	"testing"

	"inca/internal/accel"
	"inca/internal/iau"
	"inca/internal/isa"
	"inca/internal/model"
	"inca/internal/tensor"
)

// TestNoParkOnMidGroupRestore is the minimized regression for a bug the
// preemption fuzzer surfaced: residual (Add) layers restore two inputs, so a
// backup/restore group carries two consecutive Vir_LOAD_D. The VI boundary
// check used to accept the second one as a park point — skipping the
// Vir_SAVE backup and, on resume, the first input's restore, which the
// engine then rejected as a missing-restore residency violation. Aim an
// interfering request at the exact solo-run cycle of every mid-group
// Vir_LOAD_D and require the run to complete with the uninterrupted output.
func TestNoParkOnMidGroupRestore(t *testing.T) {
	cfg := accel.Big()
	cfg.ParaIn, cfg.ParaOut, cfg.ParaHeight = 4, 4, 3

	g := model.New("midgroup", 1, 15, 16)
	a := g.Conv("a", 0, 5, 3, 1, 1, true)
	b := g.Conv("b", 0, 5, 1, 1, 0, false)
	g.Residual("res", a, b, true)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	victim, _ := buildFunctional(t, g, cfg, true, 31)
	probeNet := model.NewTinyCNN(2, 8, 10)
	probe, _ := buildFunctional(t, probeNet, cfg, true, 32)

	in := tensor.NewInt8(g.InC, g.InH, g.InW)
	tensor.FillPattern(in, 41)
	want, _ := runOnce(t, cfg, iau.PolicyNone, victim, in)
	probeIn := tensor.NewInt8(probeNet.InC, probeNet.InH, probeNet.InW)
	tensor.FillPattern(probeIn, 42)

	// Solo start cycle of every instruction, replicating the IAU's timing:
	// virtuals cost a fetch, real instructions their engine cycles.
	eng := accel.NewEngine(cfg)
	starts := make([]uint64, len(victim.Instrs))
	var now uint64
	for i, ins := range victim.Instrs {
		starts[i] = now
		if ins.Op == isa.OpEnd {
			break
		}
		if ins.Op.Virtual() {
			now += uint64(cfg.FetchCycles)
			continue
		}
		c, _ := eng.Exec(nil, victim, ins, 0)
		now += c
	}
	eng.Close()

	tested := 0
	for pc := 1; pc < len(victim.Instrs); pc++ {
		if victim.Instrs[pc].Op != isa.OpVirLoadD || victim.Instrs[pc-1].Op != isa.OpVirLoadD {
			continue
		}
		if tested++; tested > 12 {
			break // a dozen mid-group positions is plenty
		}
		arena, err := accel.NewArena(victim)
		if err != nil {
			t.Fatal(err)
		}
		if err := accel.WriteInput(arena, victim, in); err != nil {
			t.Fatal(err)
		}
		parena, err := accel.NewArena(probe)
		if err != nil {
			t.Fatal(err)
		}
		if err := accel.WriteInput(parena, probe, probeIn); err != nil {
			t.Fatal(err)
		}
		u := iau.New(cfg, iau.PolicyVI)
		var parked []int
		u.OnPreempt = func(pr *iau.Preemption) {
			parked = append(parked, u.Registers(pr.Victim).InstrAddr)
		}
		if err := u.Submit(2, &iau.Request{Label: "victim", Prog: victim, Arena: arena}); err != nil {
			t.Fatal(err)
		}
		if err := u.SubmitAt(1, &iau.Request{Label: "probe", Prog: probe, Arena: parena}, starts[pc]); err != nil {
			t.Fatal(err)
		}
		if err := u.RunAll(); err != nil {
			t.Fatalf("probe at mid-group pc %d (cycle %d): %v", pc, starts[pc], err)
		}
		for _, at := range parked {
			if at > 0 && victim.Instrs[at].Op == isa.OpVirLoadD && victim.Instrs[at-1].Op == isa.OpVirLoadD {
				t.Fatalf("victim parked at mid-group restore pc %d", at)
			}
		}
		got, err := accel.ReadOutput(arena, victim)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("probe at mid-group pc %d changed the victim's output", pc)
		}
		u.Eng.Close()
	}
	if tested == 0 {
		t.Fatal("compiled stream has no mid-group Vir_LOAD_D — residual restore groups missing")
	}
}
