package iau

import "inca/internal/isa"

// MethodCost is the IAU's modeled cost of preempting a slot with a given
// interrupt method, measured from the slot's current stream position. All
// figures come from the deterministic cycle model (the same one
// WatchdogBound uses), so the query is pure: calling it never advances
// time, draws faults, or touches engine state. It is an *estimate* — the
// victim may hit a rewritten-SAVE skip or an injected stall the model does
// not see — which is exactly why schedulers built on it can only change
// timing, never results.
type MethodCost struct {
	Method Policy
	// WaitCycles models the time until the victim's next boundary legal
	// under Method (t1 of the paper's latency decomposition).
	WaitCycles uint64
	// BackupCycles models the state-save transfer at that boundary (t2).
	BackupCycles uint64
	// RestoreCycles models the replay cost when the victim later resumes
	// (t4).
	RestoreCycles uint64
	// BackupBytes is the modeled backup traffic.
	BackupBytes uint64
	// Feasible is false when no legal boundary exists before the program
	// ends — preempting with this method is impossible from here.
	Feasible bool
}

// Response returns the modeled preemptor-visible latency: wait + backup.
func (m MethodCost) Response() uint64 { return m.WaitCycles + m.BackupCycles }

// Total returns the modeled extra cycles the switch charges overall:
// backup + restore (the wait is work the victim performs anyway).
func (m MethodCost) Total() uint64 { return m.BackupCycles + m.RestoreCycles }

// modelInstrCycles is the per-instruction cycle model shared with
// WatchdogBound: transfers cost their modeled DDR time, virtual
// instructions their fetch-and-discard time, everything else the
// accelerator's instruction model.
func (u *IAU) modelInstrCycles(p *isa.Program, in isa.Instruction) uint64 {
	switch in.Op {
	case isa.OpLoadW, isa.OpLoadD, isa.OpSave:
		return u.Cfg.XferCycles(in.Len)
	case isa.OpVirSave, isa.OpVirLoadD:
		return uint64(u.Cfg.FetchCycles)
	case isa.OpEnd:
		return 0
	default:
		return u.Cfg.InstrCycles(p, in)
	}
}

// boundaryLegal mirrors canSwitch for an arbitrary stream position.
func boundaryLegal(ins []isa.Instruction, pc int, m Policy) bool {
	switch m {
	case PolicyCPULike:
		return true
	case PolicyVI:
		if ins[pc].Op == isa.OpVirSave {
			return true
		}
		if ins[pc].Op == isa.OpVirLoadD {
			return pc == 0 || (ins[pc-1].Op != isa.OpVirSave && ins[pc-1].Op != isa.OpVirLoadD)
		}
		return false
	case PolicyLayerByLayer:
		return pc != 0 && ins[pc].Op != isa.OpEnd && ins[pc].Layer != ins[pc-1].Layer
	default:
		return false
	}
}

// PreemptCostEstimate models what preempting the given slot with the given
// method would cost from its current stream position. For a slot with no
// in-flight request every cost is zero and Feasible is false.
func (u *IAU) PreemptCostEstimate(slot int, m Policy) MethodCost {
	mc := MethodCost{Method: m}
	if slot < 0 || slot >= NumSlots {
		return mc
	}
	t := u.slots[slot]
	if t.cur == nil || t.cur.Prog == nil {
		return mc
	}
	p := t.cur.Prog
	ins := p.Instrs

	if m == PolicyCPULike {
		buf := uint64(u.Cfg.TotalBufferBytes())
		mc.WaitCycles = 0
		mc.BackupCycles = u.Cfg.XferCycles(uint32(buf))
		mc.RestoreCycles = mc.BackupCycles
		mc.BackupBytes = buf
		mc.Feasible = ins[t.pc].Op != isa.OpEnd
		return mc
	}

	// Walk forward to the next legal boundary, accumulating the modeled
	// cost of every instruction the victim must still execute first.
	pc := t.pc
	for ; pc < len(ins); pc++ {
		if ins[pc].Op == isa.OpEnd {
			return mc // finishes before any boundary: not preemptible
		}
		if boundaryLegal(ins, pc, m) {
			break
		}
		mc.WaitCycles += u.modelInstrCycles(p, ins[pc])
	}
	if pc >= len(ins) {
		return mc
	}
	mc.Feasible = true
	if m == PolicyLayerByLayer {
		return mc // next layer reloads through its own LOADs: free switch
	}

	// VI: the boundary is either a Vir_SAVE (materialise it, then resume
	// replays the following Vir_LOAD_D group) or a lone Vir_LOAD_D leader
	// (nothing to save; resume replays the group from here).
	if ins[pc].Op == isa.OpVirSave {
		save := ins[pc]
		skip := uint32(0)
		if pc == t.pc && t.saveValid && t.saveID == save.SaveID {
			skip = t.saveBytes
			if skip > save.Len {
				skip = save.Len
			}
		}
		mc.BackupCycles = u.Cfg.XferCycles(save.Len - skip)
		mc.BackupBytes = uint64(save.Len - skip)
		pc++
	}
	for ; pc < len(ins) && ins[pc].Op == isa.OpVirLoadD; pc++ {
		mc.RestoreCycles += u.Cfg.XferCycles(ins[pc].Len)
	}
	return mc
}

// RemainingModelCycles walks the slot's remaining instruction stream
// through the cycle model and returns the modeled cycles to completion;
// the second return is false when the slot has no in-flight request. This
// is the IAU-side "ground truth" estimator a scheduler can compare its
// learned estimates against.
func (u *IAU) RemainingModelCycles(slot int) (uint64, bool) {
	if slot < 0 || slot >= NumSlots {
		return 0, false
	}
	t := u.slots[slot]
	if t.cur == nil || t.cur.Prog == nil {
		return 0, false
	}
	p := t.cur.Prog
	var total uint64
	for pc := t.pc; pc < len(p.Instrs); pc++ {
		total += u.modelInstrCycles(p, p.Instrs[pc])
	}
	return total, true
}
