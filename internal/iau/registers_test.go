package iau_test

import (
	"testing"

	"inca/internal/accel"
	"inca/internal/iau"
	"inca/internal/model"
)

// TestRegistersView: the Fig. 3 per-slot register view tracks a task
// through preemption — SaveID/SaveLength populate at the Vir_SAVE and clear
// after the rewritten SAVE retires.
func TestRegistersView(t *testing.T) {
	cfg := accel.Big()
	u := iau.New(cfg, iau.PolicyVI)

	if r := u.Registers(1); r.State != iau.Idle || r.Label != "" || r.QueueDepth != 0 {
		t.Fatalf("idle slot registers %+v", r)
	}
	if r := u.Registers(-1); r != (iau.Registers{}) {
		t.Fatal("out-of-range slot returned data")
	}

	victim := timingProg(t, model.NewVGG16(3, 60, 80), cfg, true)
	probe := timingProg(t, model.NewTinyCNN(3, 8, 8), cfg, false)
	if err := u.Submit(1, &iau.Request{Label: "victim", Prog: victim}); err != nil {
		t.Fatal(err)
	}
	if err := u.Submit(1, &iau.Request{Label: "queued", Prog: probe}); err != nil {
		t.Fatal(err)
	}
	// Arrivals are admitted when the clock runs; a minimal Run dispatches
	// the first request and leaves the second queued.
	if err := u.Run(1); err != nil {
		t.Fatal(err)
	}
	if r := u.Registers(1); r.State != iau.Running || r.Label != "victim" || r.QueueDepth != 1 {
		t.Fatalf("running slot registers %+v", r)
	}
	// The preemptor is itself long-running, so there is a wide window in
	// which the victim sits Preempted.
	big := timingProg(t, model.NewVGG16(3, 60, 80), cfg, false)
	if err := u.SubmitAt(0, &iau.Request{Label: "fe", Prog: big}, 200_000); err != nil {
		t.Fatal(err)
	}
	// Run until the preemption has happened but the victim has not resumed.
	if err := u.Run(300_000); err != nil {
		t.Fatal(err)
	}
	if len(u.Preemptions) == 0 {
		t.Fatal("no preemption by 210k cycles")
	}
	r := u.Registers(1)
	if r.State != iau.Preempted || r.Label != "victim" {
		t.Fatalf("victim registers after preemption: %+v", r)
	}
	if r.InstrAddr == 0 {
		t.Fatal("InstrAddr not advanced")
	}
	if u.Preemptions[0].BackupBytes > 0 && !r.SaveValid {
		t.Fatal("backup happened but SaveValid clear")
	}
	if err := u.RunAll(); err != nil {
		t.Fatal(err)
	}
	if r := u.Registers(1); r.State != iau.Idle || r.SaveValid {
		t.Fatalf("registers after completion: %+v", r)
	}
}
