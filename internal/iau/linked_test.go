package iau_test

import (
	"testing"

	"inca/internal/accel"
	"inca/internal/compiler"
	"inca/internal/iau"
	"inca/internal/isa"
	"inca/internal/model"
	"inca/internal/quant"
	"inca/internal/tensor"
)

// TestLinkedMultiTenantArena is the full multi-tenant memory story: two
// tasks' programs are linked into ONE shared DDR image (the IAU offset
// registers' purpose), run functionally on one accelerator with the
// high-priority task repeatedly preempting the low-priority one — and both
// outputs are bit-exact against their references. Any address-relocation
// slip would corrupt the neighbour's featuremaps.
func TestLinkedMultiTenantArena(t *testing.T) {
	cfg := accel.Big()
	cfg.ParaIn, cfg.ParaOut, cfg.ParaHeight = 4, 4, 3

	build := func(g *model.Network, seed uint64) (*isa.Program, *quant.Network) {
		q, err := quant.Synthesize(g, seed)
		if err != nil {
			t.Fatal(err)
		}
		opt := cfg.CompilerOptions()
		opt.VI = compiler.VIEvery{}
		opt.EmitWeights = true
		p, err := compiler.Compile(q, opt)
		if err != nil {
			t.Fatal(err)
		}
		return p, q
	}
	gHi := model.NewTinyCNN(3, 16, 16)
	gLo := model.NewResNetTiny()
	pHi, qHi := build(gHi, 5)
	pLo, qLo := build(gLo, 6)

	linked, total, err := isa.Link([]*isa.Program{pHi, pLo})
	if err != nil {
		t.Fatal(err)
	}
	if total < pHi.DDRBytes+pLo.DDRBytes {
		t.Fatalf("linked image %d smaller than parts %d+%d", total, pHi.DDRBytes, pLo.DDRBytes)
	}
	arena, err := isa.BuildLinkedArena(linked)
	if err != nil {
		t.Fatal(err)
	}

	inHi := tensor.NewInt8(gHi.InC, gHi.InH, gHi.InW)
	tensor.FillPattern(inHi, 1)
	inLo := tensor.NewInt8(gLo.InC, gLo.InH, gLo.InW)
	tensor.FillPattern(inLo, 2)
	if err := accel.WriteInput(arena, linked[0], inHi); err != nil {
		t.Fatal(err)
	}
	if err := accel.WriteInput(arena, linked[1], inLo); err != nil {
		t.Fatal(err)
	}

	u := iau.New(cfg, iau.PolicyVI)
	if err := u.Submit(1, &iau.Request{Label: "lo", Prog: linked[1], Arena: arena}); err != nil {
		t.Fatal(err)
	}
	// Several high-priority bursts against the same shared arena.
	for i := 0; i < 4; i++ {
		if err := u.SubmitAt(0, &iau.Request{Label: "hi", Prog: linked[0], Arena: arena}, uint64(2000+30000*i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := u.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(u.Preemptions) == 0 {
		t.Fatal("no preemptions in the multi-tenant run")
	}

	wantHi, err := qHi.RunFinal(inHi)
	if err != nil {
		t.Fatal(err)
	}
	wantLo, err := qLo.RunFinal(inLo)
	if err != nil {
		t.Fatal(err)
	}
	gotHi, err := accel.ReadOutput(arena, linked[0])
	if err != nil {
		t.Fatal(err)
	}
	gotLo, err := accel.ReadOutput(arena, linked[1])
	if err != nil {
		t.Fatal(err)
	}
	if !gotHi.Equal(wantHi) {
		t.Error("high-priority tenant output corrupted in the shared arena")
	}
	if !gotLo.Equal(wantLo) {
		t.Error("low-priority tenant output corrupted in the shared arena")
	}
}

func TestLinkErrors(t *testing.T) {
	if _, _, err := isa.Link(nil); err == nil {
		t.Error("empty link accepted")
	}
	if _, err := isa.BuildLinkedArena(nil); err == nil {
		t.Error("empty arena build accepted")
	}
}
