package iau

// Internal tests for the watchdog salvage path: a killed task whose slot
// holds a committed preemption checkpoint yields a restorable ResumeToken
// through Completion.Salvage, and ResumeSalvaged continues it — on this or
// any other engine — bit-exactly. The tests live inside the package so the
// corruption case can reach the token's backup span directly.

import (
	"testing"

	"inca/internal/accel"
	"inca/internal/compiler"
	"inca/internal/fault"
	"inca/internal/model"
	"inca/internal/quant"
	"inca/internal/tensor"
)

func salvageConfig() accel.Config {
	cfg := accel.Big()
	cfg.ParaIn, cfg.ParaOut, cfg.ParaHeight = 4, 4, 3
	return cfg
}

// stageKill runs a functional victim through one clean preemption (which
// commits a salvage checkpoint), then hangs its next instruction so the
// watchdog kills it. Returns the victim request, its arena, the expected
// final output, and the salvage token OnFail published.
func stageKill(t *testing.T) (*Request, []byte, *tensor.Int8, *ResumeToken, accel.Config) {
	t.Helper()
	cfg := salvageConfig()

	victim := model.NewResNetTiny()
	vq, err := quant.Synthesize(victim, 11)
	if err != nil {
		t.Fatal(err)
	}
	vopt := cfg.CompilerOptions()
	vopt.VI = compiler.VIEvery{}
	vopt.EmitWeights = true
	vp, err := compiler.Compile(vq, vopt)
	if err != nil {
		t.Fatal(err)
	}
	pq, err := quant.Synthesize(model.NewTinyCNN(3, 16, 16), 13)
	if err != nil {
		t.Fatal(err)
	}
	popt := cfg.CompilerOptions()
	pp, err := compiler.Compile(pq, popt)
	if err != nil {
		t.Fatal(err)
	}

	vin := tensor.NewInt8(victim.InC, victim.InH, victim.InW)
	tensor.FillPattern(vin, 5)
	want, err := vq.RunFinal(vin)
	if err != nil {
		t.Fatal(err)
	}
	varena, err := accel.NewArena(vp)
	if err != nil {
		t.Fatal(err)
	}
	if err := accel.WriteInput(varena, vp, vin); err != nil {
		t.Fatal(err)
	}

	u := New(cfg, PolicyVI)
	defer u.Eng.Close()
	u.SalvageCheckpoints = true
	u.WatchdogCycles = WatchdogBound(cfg, vp, pp)
	u.Faults = fault.New(21) // armed with zero rates until the kill is staged

	var salvage *ResumeToken
	var fails int
	u.OnFail = func(c Completion, err error) {
		fails++
		salvage = c.Salvage
	}
	// Arm the hang the instant the preemptor completes: the callback fires
	// before the parked victim resumes, so the kill lands on the victim's
	// first post-resume instruction — while the checkpointed backup span is
	// still byte-identical to what its CRC covers.
	u.OnComplete = func(c Completion) {
		u.Faults.SetRate(fault.SiteHang, 1.0)
	}

	vr := &Request{Label: "victim", Prog: vp, Arena: varena}
	if err := u.Submit(2, vr); err != nil {
		t.Fatal(err)
	}
	if err := u.SubmitAt(0, &Request{Label: "preemptor", Prog: pp}, 2000); err != nil {
		t.Fatal(err)
	}
	if err := u.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(u.Preemptions) == 0 {
		t.Fatal("staging failed: victim was not preempted")
	}
	if fails != 1 || !vr.Failed {
		t.Fatalf("victim not killed (fails=%d failed=%v)", fails, vr.Failed)
	}
	if salvage == nil {
		t.Fatal("watchdog kill after a committed checkpoint published no salvage token")
	}
	if salvage.Req != vr {
		t.Fatal("salvage token carries the wrong request")
	}
	if salvage.pc == 0 {
		t.Fatal("salvage token resumes at pc 0 — checkpoint did not capture the preemption boundary")
	}
	return vr, varena, want, salvage, cfg
}

// TestWatchdogSalvageResumesBitExact: the killed victim's salvage token
// resumes on a second engine from the last Vir_SAVE backup, skipping the
// completed prefix, and the final output is bit-identical to the reference.
func TestWatchdogSalvageResumesBitExact(t *testing.T) {
	vr, varena, want, salvage, cfg := stageKill(t)

	b := New(cfg, PolicyVI)
	defer b.Eng.Close()
	b.SalvageCheckpoints = true
	if err := b.ResumeSalvaged(2, salvage); err != nil {
		t.Fatal(err)
	}
	if vr.Failed {
		t.Error("resumed request still marked failed")
	}
	if vr.Retries != 1 {
		t.Errorf("retries = %d, want 1", vr.Retries)
	}
	if err := b.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(b.Completions) != 1 || b.Completions[0].Req != vr {
		t.Fatalf("victim did not complete on the second engine: %+v", b.Completions)
	}
	if vr.Restarts != 0 {
		t.Errorf("intact checkpoint restarted %d times, want a true resume", vr.Restarts)
	}
	got, err := accel.ReadOutput(varena, vr.Prog)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("salvaged execution differs from fault-free reference")
	}

	// The same token cannot resume twice (it would fork the request).
	vr.Failed = true
	if err := New(cfg, PolicyVI).ResumeSalvaged(2, salvage); err == nil {
		t.Error("consumed salvage token accepted a second resume")
	}
}

// TestWatchdogSalvageCorruptCheckpointRestarts: a salvage token whose DDR
// backup span was corrupted after the checksum was recorded is detected at
// the destination's restore and degrades to the restart-from-scratch path —
// still completing bit-exactly, never trusting bad state.
func TestWatchdogSalvageCorruptCheckpointRestarts(t *testing.T) {
	vr, varena, want, salvage, cfg := stageKill(t)
	if !salvage.crcValid {
		t.Fatal("checkpoint carries no checksum; corruption would be undetectable")
	}
	varena[salvage.bkLo] ^= 0x40 // rot the backup span behind the CRC's back

	b := New(cfg, PolicyVI)
	defer b.Eng.Close()
	b.SalvageCheckpoints = true
	if err := b.ResumeSalvaged(2, salvage); err != nil {
		t.Fatal(err)
	}
	if err := b.RunAll(); err != nil {
		t.Fatal(err)
	}
	if b.Fault.CorruptedRestores != 1 {
		t.Fatalf("corrupted restores = %d, want 1", b.Fault.CorruptedRestores)
	}
	if vr.Corrupted != 1 || vr.Restarts != 1 {
		t.Errorf("corrupted=%d restarts=%d, want 1/1", vr.Corrupted, vr.Restarts)
	}
	if len(b.Completions) != 1 {
		t.Fatalf("victim did not complete after detected restart: %+v", b.Completions)
	}
	got, err := accel.ReadOutput(varena, vr.Prog)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("restarted execution differs from fault-free reference")
	}
}

// TestWatchdogKillWithoutCheckpointHasNoSalvage: a task killed before any
// preemption boundary has nothing to salvage; OnFail reports a nil token
// and the only recovery is a full resubmission.
func TestWatchdogKillWithoutCheckpointHasNoSalvage(t *testing.T) {
	cfg := salvageConfig()
	q, err := quant.Synthesize(model.NewTinyCNN(3, 16, 16), 7)
	if err != nil {
		t.Fatal(err)
	}
	opt := cfg.CompilerOptions()
	opt.VI = compiler.VIEvery{}
	p, err := compiler.Compile(q, opt)
	if err != nil {
		t.Fatal(err)
	}

	u := New(cfg, PolicyVI)
	defer u.Eng.Close()
	u.SalvageCheckpoints = true
	u.WatchdogCycles = WatchdogBound(cfg, p)
	u.Faults = fault.New(3)
	u.Faults.SetRate(fault.SiteHang, 1.0)

	var salvage *ResumeToken
	sawFail := false
	u.OnFail = func(c Completion, err error) {
		sawFail = true
		salvage = c.Salvage
	}
	req := &Request{Label: "fresh", Prog: p}
	if err := u.Submit(1, req); err != nil {
		t.Fatal(err)
	}
	if err := u.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !sawFail {
		t.Fatal("hang at rate 1.0 was not killed")
	}
	if salvage != nil {
		t.Fatal("never-preempted task produced a salvage token")
	}

	// ResumeSalvaged argument validation.
	if err := u.ResumeSalvaged(1, nil); err == nil {
		t.Error("nil salvage token accepted")
	}
	healthy := &ResumeToken{Req: &Request{Label: "ok"}, Policy: PolicyVI}
	if err := u.ResumeSalvaged(1, healthy); err == nil {
		t.Error("salvage resume of a non-failed request accepted")
	}
}
