package iau_test

import (
	"testing"

	"inca/internal/accel"
	"inca/internal/compiler"
	"inca/internal/iau"
	"inca/internal/isa"
	"inca/internal/model"
	"inca/internal/quant"
	"inca/internal/tensor"
)

// buildFunctional compiles a network for functional execution on cfg.
func buildFunctional(t *testing.T, g *model.Network, cfg accel.Config, vi bool, seed uint64) (*isa.Program, *quant.Network) {
	t.Helper()
	q, err := quant.Synthesize(g, seed)
	if err != nil {
		t.Fatalf("synthesize %s: %v", g.Name, err)
	}
	opt := cfg.CompilerOptions()
	opt.VI = compiler.VIIf(vi)
	opt.EmitWeights = true
	p, err := compiler.Compile(q, opt)
	if err != nil {
		t.Fatalf("compile %s: %v", g.Name, err)
	}
	return p, q
}

func runOnce(t *testing.T, cfg accel.Config, policy iau.Policy, p *isa.Program, input *tensor.Int8) (*tensor.Int8, *iau.IAU) {
	t.Helper()
	arena, err := accel.NewArena(p)
	if err != nil {
		t.Fatalf("arena: %v", err)
	}
	if err := accel.WriteInput(arena, p, input); err != nil {
		t.Fatalf("write input: %v", err)
	}
	u := iau.New(cfg, policy)
	if err := u.Submit(1, &iau.Request{Label: "solo", Prog: p, Arena: arena}); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if err := u.RunAll(); err != nil {
		t.Fatalf("run: %v", err)
	}
	out, err := accel.ReadOutput(arena, p)
	if err != nil {
		t.Fatalf("read output: %v", err)
	}
	return out, u
}

// TestFunctionalMatchesReference proves the tiled, buffered accelerator
// datapath computes exactly what the plain reference executor computes.
func TestFunctionalMatchesReference(t *testing.T) {
	nets := []*model.Network{
		model.NewTinyCNN(3, 24, 32),
		model.NewMobileNetTiny(),
		model.NewResNetTiny(),
		model.NewPoolNet(),
	}
	for _, g := range nets {
		g := g
		t.Run(g.Name, func(t *testing.T) {
			cfg := accel.Big()
			cfg.ParaIn, cfg.ParaOut, cfg.ParaHeight = 4, 4, 3 // force multi-group tiling
			p, q := buildFunctional(t, g, cfg, true, 7)
			input := tensor.NewInt8(g.InC, g.InH, g.InW)
			tensor.FillPattern(input, 99)

			got, _ := runOnce(t, cfg, iau.PolicyNone, p, input)
			want, err := q.RunFinal(input)
			if err != nil {
				t.Fatalf("reference: %v", err)
			}
			if !got.Equal(want) {
				t.Fatalf("accelerator output differs from reference (shape %v vs %v)", got.Shape, want.Shape)
			}
		})
	}
}

// TestPreemptionBitExact proves the core INCA property: a low-priority task
// preempted (possibly many times) by a high-priority task produces exactly
// the same output as an uninterrupted run, under every interrupt policy.
func TestPreemptionBitExact(t *testing.T) {
	cfg := accel.Big()
	cfg.ParaIn, cfg.ParaOut, cfg.ParaHeight = 4, 4, 3

	victim := model.NewResNetTiny()
	preemptor := model.NewTinyCNN(3, 16, 16)

	for _, policy := range []iau.Policy{iau.PolicyVI, iau.PolicyLayerByLayer, iau.PolicyCPULike} {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			vp, vq := buildFunctional(t, victim, cfg, true, 11)
			pp, _ := buildFunctional(t, preemptor, cfg, true, 13)

			vin := tensor.NewInt8(victim.InC, victim.InH, victim.InW)
			tensor.FillPattern(vin, 5)
			pin := tensor.NewInt8(preemptor.InC, preemptor.InH, preemptor.InW)
			tensor.FillPattern(pin, 6)

			want, err := vq.RunFinal(vin)
			if err != nil {
				t.Fatalf("reference: %v", err)
			}

			varena, err := accel.NewArena(vp)
			if err != nil {
				t.Fatalf("arena: %v", err)
			}
			if err := accel.WriteInput(varena, vp, vin); err != nil {
				t.Fatal(err)
			}

			u := iau.New(cfg, policy)
			if err := u.Submit(2, &iau.Request{Label: "victim", Prog: vp, Arena: varena}); err != nil {
				t.Fatal(err)
			}
			// Fire a burst of high-priority requests spread over the
			// victim's runtime so preemptions land at many positions.
			for i := 0; i < 8; i++ {
				parena, err := accel.NewArena(pp)
				if err != nil {
					t.Fatal(err)
				}
				if err := accel.WriteInput(parena, pp, pin); err != nil {
					t.Fatal(err)
				}
				at := uint64(1000 + i*40000)
				if err := u.SubmitAt(0, &iau.Request{Label: "preemptor", Prog: pp, Arena: parena}, at); err != nil {
					t.Fatal(err)
				}
			}
			if err := u.RunAll(); err != nil {
				t.Fatalf("run: %v", err)
			}
			if len(u.Preemptions) == 0 {
				t.Fatalf("scenario produced no preemptions; timing assumptions broken")
			}
			got, err := accel.ReadOutput(varena, vp)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Fatalf("preempted output differs from reference after %d preemptions", len(u.Preemptions))
			}
			if len(u.Completions) != 9 {
				t.Fatalf("expected 9 completions, got %d", len(u.Completions))
			}
		})
	}
}
