package iau_test

import (
	"strings"
	"testing"

	"inca/internal/accel"
	"inca/internal/fault"
	"inca/internal/iau"
	"inca/internal/model"
	"inca/internal/tensor"
)

// TestCorruptRestoreRecoversBitExact is the arena-level differential proof:
// with every interrupt backup corrupted in DDR (rate 1.0), the CRC check
// catches each one at restore, the victim re-executes from scratch, and the
// final output is still bit-identical to the fault-free reference — no
// silent divergence, under both backup mechanisms (Vir_SAVE spans and
// CPU-like snapshots).
func TestCorruptRestoreRecoversBitExact(t *testing.T) {
	cfg := accel.Big()
	cfg.ParaIn, cfg.ParaOut, cfg.ParaHeight = 4, 4, 3

	victim := model.NewResNetTiny()
	preemptor := model.NewTinyCNN(3, 16, 16)

	for _, policy := range []iau.Policy{iau.PolicyVI, iau.PolicyCPULike} {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			vp, vq := buildFunctional(t, victim, cfg, true, 11)
			pp, _ := buildFunctional(t, preemptor, cfg, true, 13)

			vin := tensor.NewInt8(victim.InC, victim.InH, victim.InW)
			tensor.FillPattern(vin, 5)
			pin := tensor.NewInt8(preemptor.InC, preemptor.InH, preemptor.InW)
			tensor.FillPattern(pin, 6)
			want, err := vq.RunFinal(vin)
			if err != nil {
				t.Fatal(err)
			}

			varena, err := accel.NewArena(vp)
			if err != nil {
				t.Fatal(err)
			}
			if err := accel.WriteInput(varena, vp, vin); err != nil {
				t.Fatal(err)
			}

			u := iau.New(cfg, policy)
			u.Faults = fault.New(3)
			u.Faults.SetRate(fault.SiteBackup, 1.0)
			vr := &iau.Request{Label: "victim", Prog: vp, Arena: varena}
			if err := u.Submit(2, vr); err != nil {
				t.Fatal(err)
			}
			// Drive preemptors one at a time with a sliding offset so the
			// boundaries walk the victim's program and several land on
			// data-bearing backups (Vir_SAVEs under VI; every snapshot
			// under CPU-like).
			for i := 0; i < 25 && vr.DoneCycle == 0; i++ {
				parena, err := accel.NewArena(pp)
				if err != nil {
					t.Fatal(err)
				}
				if err := accel.WriteInput(parena, pp, pin); err != nil {
					t.Fatal(err)
				}
				at := u.Now + 1500 + uint64(i*137)
				if err := u.SubmitAt(0, &iau.Request{Label: "preemptor", Prog: pp, Arena: parena}, at); err != nil {
					t.Fatal(err)
				}
				for len(u.Completions) < i+1 && u.Pending() {
					if err := u.Run(u.Now + 2000); err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := u.RunAll(); err != nil {
				t.Fatal(err)
			}

			if u.Fault.CorruptedRestores == 0 {
				t.Fatal("no corrupted restore detected despite rate 1.0")
			}
			if vr.Corrupted != u.Fault.CorruptedRestores {
				t.Errorf("victim saw %d corruptions, IAU counted %d", vr.Corrupted, u.Fault.CorruptedRestores)
			}
			if vr.Restarts != vr.Corrupted {
				t.Errorf("%d corruptions but %d restarts", vr.Corrupted, vr.Restarts)
			}
			got, err := accel.ReadOutput(varena, vp)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want) {
				t.Fatal("recovered execution differs from fault-free reference")
			}
		})
	}
}

// TestCorruptRestoreTimingOnly: runs without a DDR arena carry corruption
// as backup metadata; detection and restart still happen.
func TestCorruptRestoreTimingOnly(t *testing.T) {
	cfg := accel.Big()
	// VGG16 compiles with plenty of Vir_SAVEs at full parallelism (tiny
	// nets commit every group through ordinary SAVEs and never back up).
	vp := timingProg(t, model.NewVGG16(3, 60, 80), cfg, true)
	pp := timingProg(t, model.NewTinyCNN(3, 16, 16), cfg, false)

	u := iau.New(cfg, iau.PolicyVI)
	u.Faults = fault.New(9)
	u.Faults.SetRate(fault.SiteBackup, 1.0)
	vr := &iau.Request{Label: "victim", Prog: vp}
	if err := u.Submit(1, vr); err != nil {
		t.Fatal(err)
	}
	// Spread several preemptors across the victim's runtime so boundaries
	// land on Vir_SAVEs.
	for i := 0; i < 4; i++ {
		if err := u.SubmitAt(0, &iau.Request{Label: "p", Prog: pp}, uint64(20_000+i*30_000)); err != nil {
			t.Fatal(err)
		}
	}
	if err := u.RunAll(); err != nil {
		t.Fatal(err)
	}
	if u.Fault.CorruptedRestores == 0 || vr.Restarts == 0 {
		t.Fatalf("timing-only corruption not detected (restores=%d restarts=%d)",
			u.Fault.CorruptedRestores, vr.Restarts)
	}
	if len(u.Completions) != 5 {
		t.Fatalf("%d completions, want 5", len(u.Completions))
	}
	if vr.DoneCycle != u.Completions[len(u.Completions)-1].Req.DoneCycle {
		t.Error("restarted victim did not finish last")
	}
}

// TestWatchdogKillsHang: an injected instruction hang is converted into a
// bounded slot reset by the watchdog, the failure is reported, and the slot
// immediately accepts (and completes) new work.
func TestWatchdogKillsHang(t *testing.T) {
	cfg := accel.Big()
	p := timingProg(t, model.NewTinyCNN(3, 16, 16), cfg, true)

	u := iau.New(cfg, iau.PolicyVI)
	u.Faults = fault.New(4)
	u.Faults.SetRate(fault.SiteHang, 1.0)
	u.WatchdogCycles = iau.WatchdogBound(cfg, p)

	var failed []iau.Completion
	u.OnFail = func(c iau.Completion, err error) {
		failed = append(failed, c)
		if err == nil || !strings.Contains(err.Error(), "watchdog") {
			t.Errorf("failure error %v does not name the watchdog", err)
		}
	}
	req := &iau.Request{Label: "hung", Prog: p}
	if err := u.Submit(1, req); err != nil {
		t.Fatal(err)
	}
	if err := u.RunAll(); err != nil {
		t.Fatal(err)
	}
	if !req.Failed || len(failed) != 1 {
		t.Fatalf("hang not killed (failed=%v, callbacks=%d)", req.Failed, len(failed))
	}
	if u.Fault.WatchdogKills != 1 || len(u.Resets) != 1 {
		t.Fatalf("kills=%d resets=%d, want 1/1", u.Fault.WatchdogKills, len(u.Resets))
	}

	// Heal the fault and resubmit: the reset slot must run it to completion.
	u.Faults.SetRate(fault.SiteHang, 0)
	if err := u.Resubmit(1, req, u.Now); err != nil {
		t.Fatal(err)
	}
	if err := u.RunAll(); err != nil {
		t.Fatal(err)
	}
	if req.Failed || req.Retries != 1 || len(u.Completions) != 1 {
		t.Fatalf("retry did not complete (failed=%v retries=%d completions=%d)",
			req.Failed, req.Retries, len(u.Completions))
	}
	// Resubmitting a healthy request is an error.
	if err := u.Resubmit(1, req, u.Now); err == nil {
		t.Error("resubmit of a non-failed request accepted")
	}
}

// TestHangWithoutWatchdogIsFatal: with no watchdog armed a hang cannot be
// recovered; the run must fail loudly rather than spin forever.
func TestHangWithoutWatchdogIsFatal(t *testing.T) {
	cfg := accel.Big()
	p := timingProg(t, model.NewTinyCNN(3, 16, 16), cfg, true)
	u := iau.New(cfg, iau.PolicyVI)
	u.Faults = fault.New(4)
	u.Faults.SetRate(fault.SiteHang, 1.0)
	if err := u.Submit(1, &iau.Request{Label: "hung", Prog: p}); err != nil {
		t.Fatal(err)
	}
	if err := u.RunAll(); err == nil || !strings.Contains(err.Error(), "watchdog") {
		t.Fatalf("hang without watchdog returned %v, want watchdog error", err)
	}
}

// TestStallDelaysButCompletes: transient stalls cost cycles, nothing else.
func TestStallDelaysButCompletes(t *testing.T) {
	cfg := accel.Big()
	p := timingProg(t, model.NewTinyCNN(3, 16, 16), cfg, true)

	clean := iau.New(cfg, iau.PolicyVI)
	if err := clean.Submit(1, &iau.Request{Label: "r", Prog: p}); err != nil {
		t.Fatal(err)
	}
	if err := clean.RunAll(); err != nil {
		t.Fatal(err)
	}

	u := iau.New(cfg, iau.PolicyVI)
	u.Faults = fault.New(4)
	u.Faults.SetRate(fault.SiteStall, 1.0)
	if err := u.Submit(1, &iau.Request{Label: "r", Prog: p}); err != nil {
		t.Fatal(err)
	}
	if err := u.RunAll(); err != nil {
		t.Fatal(err)
	}
	if u.Fault.Stalls == 0 || u.Fault.StallCycles == 0 {
		t.Fatal("no stalls injected at rate 1.0")
	}
	want := clean.Completions[0].Req.DoneCycle + u.Fault.StallCycles
	if got := u.Completions[0].Req.DoneCycle; got != want {
		t.Errorf("stalled completion at %d, want clean %d + stall %d = %d",
			got, clean.Completions[0].Req.DoneCycle, u.Fault.StallCycles, want)
	}
}

// TestLostIRQDelaysPreemption: a lost interrupt means the victim misses the
// preemption boundary and runs on; with every IRQ lost the preemptor simply
// waits for the victim — delayed, never deadlocked.
func TestLostIRQDelaysPreemption(t *testing.T) {
	cfg := accel.Big()
	vp := timingProg(t, model.NewResNetTiny(), cfg, true)
	pp := timingProg(t, model.NewTinyCNN(3, 16, 16), cfg, false)

	u := iau.New(cfg, iau.PolicyVI)
	u.Faults = fault.New(4)
	u.Faults.SetRate(fault.SiteIRQLost, 1.0)
	if err := u.Submit(1, &iau.Request{Label: "victim", Prog: vp}); err != nil {
		t.Fatal(err)
	}
	if err := u.SubmitAt(0, &iau.Request{Label: "p", Prog: pp}, 500); err != nil {
		t.Fatal(err)
	}
	if err := u.RunAll(); err != nil {
		t.Fatal(err)
	}
	if u.Fault.LostIRQs == 0 {
		t.Fatal("no IRQs lost at rate 1.0")
	}
	if len(u.Preemptions) != 0 {
		t.Fatalf("%d preemptions despite every IRQ lost", len(u.Preemptions))
	}
	if len(u.Completions) != 2 {
		t.Fatalf("%d completions, want 2", len(u.Completions))
	}
}

// TestStealInjectErrorPaths covers the migration API's failure modes:
// out-of-range slots, busy destinations, and double-resume of one token.
func TestStealInjectErrorPaths(t *testing.T) {
	cfg := accel.Big()
	vp := timingProg(t, model.NewVGG16(3, 60, 80), cfg, true)
	pp := timingProg(t, model.NewTinyCNN(3, 12, 12), cfg, false)

	a := iau.New(cfg, iau.PolicyVI)
	if _, err := a.StealPreempted(-1); err == nil {
		t.Error("steal from negative slot accepted")
	}
	if _, err := a.StealPreempted(iau.NumSlots); err == nil {
		t.Error("steal from out-of-range slot accepted")
	}
	if err := a.InjectPreempted(iau.NumSlots, &iau.ResumeToken{}); err == nil {
		t.Error("inject into out-of-range slot accepted")
	}

	// Park a preempted victim on slot 1.
	if err := a.Submit(1, &iau.Request{Label: "v", Prog: vp}); err != nil {
		t.Fatal(err)
	}
	if err := a.SubmitAt(0, &iau.Request{Label: "p", Prog: pp}, 50_000); err != nil {
		t.Fatal(err)
	}
	var tok *iau.ResumeToken
	a.OnPreempt = func(pr *iau.Preemption) {
		if tok == nil {
			tok, _ = a.StealPreempted(pr.Victim)
			// Stealing again from the now-empty slot must fail.
			if _, err := a.StealPreempted(pr.Victim); err == nil {
				t.Error("second steal from the same slot accepted")
			}
		}
	}
	if err := a.RunAll(); err != nil {
		t.Fatal(err)
	}
	if tok == nil {
		t.Fatal("no token stolen")
	}

	// A busy destination slot rejects injection.
	b := iau.New(cfg, iau.PolicyVI)
	if err := b.Submit(1, &iau.Request{Label: "busy", Prog: pp}); err != nil {
		t.Fatal(err)
	}
	if err := b.InjectPreempted(1, tok); err == nil {
		t.Error("inject into a busy slot accepted")
	}
	if err := b.InjectPreempted(2, tok); err != nil {
		t.Fatalf("inject into free slot: %v", err)
	}
	// Double resume would fork the request.
	c := iau.New(cfg, iau.PolicyVI)
	if err := c.InjectPreempted(1, tok); err == nil || !strings.Contains(err.Error(), "consumed") {
		t.Errorf("double resume returned %v, want consumed error", err)
	}
	if err := b.RunAll(); err != nil {
		t.Fatal(err)
	}
	if n := len(b.Completions); n != 2 {
		t.Fatalf("core B completed %d requests, want 2", n)
	}
}

// TestSubmitAtBusySlotQueues: submissions into an occupied slot are not
// errors — they queue FIFO behind the running request.
func TestSubmitAtBusySlotQueues(t *testing.T) {
	cfg := accel.Big()
	p := timingProg(t, model.NewTinyCNN(3, 16, 16), cfg, true)
	u := iau.New(cfg, iau.PolicyVI)
	first := &iau.Request{Label: "first", Prog: p}
	second := &iau.Request{Label: "second", Prog: p}
	if err := u.Submit(1, first); err != nil {
		t.Fatal(err)
	}
	if err := u.SubmitAt(1, second, 10); err != nil {
		t.Fatalf("queueing into a busy slot: %v", err)
	}
	if err := u.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(u.Completions) != 2 ||
		u.Completions[0].Req != first || u.Completions[1].Req != second {
		t.Fatalf("completions out of order: %+v", u.Completions)
	}
}
