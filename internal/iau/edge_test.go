package iau_test

import (
	"testing"

	"inca/internal/accel"
	"inca/internal/compiler"
	"inca/internal/iau"
	"inca/internal/isa"
	"inca/internal/model"
	"inca/internal/quant"
)

func timingProg(t *testing.T, g *model.Network, cfg accel.Config, vi bool) *isa.Program {
	t.Helper()
	q, err := quant.Synthesize(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	opt := cfg.CompilerOptions()
	opt.VI = compiler.VIIf(vi)
	p, err := compiler.Compile(q, opt)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSubmitValidation(t *testing.T) {
	cfg := accel.Big()
	u := iau.New(cfg, iau.PolicyVI)
	p := timingProg(t, model.NewTinyCNN(3, 16, 16), cfg, true)
	if err := u.Submit(-1, &iau.Request{Prog: p}); err == nil {
		t.Error("negative slot accepted")
	}
	if err := u.Submit(iau.NumSlots, &iau.Request{Prog: p}); err == nil {
		t.Error("slot beyond range accepted")
	}
	if err := u.Submit(0, nil); err == nil {
		t.Error("nil request accepted")
	}
	if err := u.Submit(0, &iau.Request{}); err == nil {
		t.Error("request without program accepted")
	}
	// Run forward, then try to submit in the past.
	if err := u.Submit(0, &iau.Request{Prog: p}); err != nil {
		t.Fatal(err)
	}
	if err := u.RunAll(); err != nil {
		t.Fatal(err)
	}
	if u.Now == 0 {
		t.Fatal("clock did not advance")
	}
	if err := u.SubmitAt(0, &iau.Request{Prog: p}, u.Now-1); err == nil {
		t.Error("submission in the past accepted")
	}
}

func TestFIFOWithinSlot(t *testing.T) {
	cfg := accel.Big()
	u := iau.New(cfg, iau.PolicyVI)
	p := timingProg(t, model.NewTinyCNN(3, 16, 16), cfg, true)
	var reqs []*iau.Request
	for i := 0; i < 5; i++ {
		r := &iau.Request{Label: string(rune('a' + i)), Prog: p}
		reqs = append(reqs, r)
		if err := u.SubmitAt(1, r, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := u.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(u.Completions) != 5 {
		t.Fatalf("%d completions", len(u.Completions))
	}
	for i, c := range u.Completions {
		if c.Req != reqs[i] {
			t.Fatalf("completion %d is %q, want %q", i, c.Req.Label, reqs[i].Label)
		}
	}
}

func TestHorizonStopAndResume(t *testing.T) {
	cfg := accel.Big()
	u := iau.New(cfg, iau.PolicyVI)
	p := timingProg(t, model.NewVGG16(3, 60, 80), cfg, true)
	if err := u.Submit(1, &iau.Request{Label: "x", Prog: p}); err != nil {
		t.Fatal(err)
	}
	// Stop mid-run.
	if err := u.Run(1000); err != nil {
		t.Fatal(err)
	}
	if len(u.Completions) != 0 {
		t.Fatal("completed within 1000 cycles?")
	}
	if !u.Pending() {
		t.Fatal("pending work lost at horizon")
	}
	// Resume to completion.
	if err := u.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(u.Completions) != 1 {
		t.Fatalf("%d completions after resume", len(u.Completions))
	}
}

// TestNestedPreemption: slot2 preempted by slot1, which is preempted by
// slot0; both resume in priority order.
func TestNestedPreemption(t *testing.T) {
	cfg := accel.Big()
	u := iau.New(cfg, iau.PolicyVI)
	u.EnableTrace = true
	big := timingProg(t, model.NewVGG16(3, 120, 160), cfg, true)
	mid := timingProg(t, model.NewVGG16(3, 60, 80), cfg, true)
	small := timingProg(t, model.NewTinyCNN(3, 16, 16), cfg, true)

	if err := u.Submit(2, &iau.Request{Label: "big", Prog: big}); err != nil {
		t.Fatal(err)
	}
	if err := u.SubmitAt(1, &iau.Request{Label: "mid", Prog: mid}, 100000); err != nil {
		t.Fatal(err)
	}
	if err := u.SubmitAt(0, &iau.Request{Label: "small", Prog: small}, 200000); err != nil {
		t.Fatal(err)
	}
	if err := u.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(u.Preemptions) != 2 {
		t.Fatalf("%d preemptions, want 2", len(u.Preemptions))
	}
	if u.Preemptions[0].Victim != 2 || u.Preemptions[0].Preemptor != 1 {
		t.Errorf("first preemption %d<-%d, want 2<-1", u.Preemptions[0].Victim, u.Preemptions[0].Preemptor)
	}
	if u.Preemptions[1].Victim != 1 || u.Preemptions[1].Preemptor != 0 {
		t.Errorf("second preemption %d<-%d, want 1<-0", u.Preemptions[1].Victim, u.Preemptions[1].Preemptor)
	}
	// Completion order must follow priority: small, mid, big.
	want := []string{"small", "mid", "big"}
	for i, c := range u.Completions {
		if c.Req.Label != want[i] {
			t.Fatalf("completion %d = %q, want %q", i, c.Req.Label, want[i])
		}
	}
	// Trace must interleave starts/preempts/resumes consistently.
	var kinds []iau.TraceKind
	for _, e := range u.Trace {
		kinds = append(kinds, e.Kind)
	}
	wantKinds := []iau.TraceKind{
		iau.TraceStart,    // big
		iau.TracePreempt,  // big by mid
		iau.TraceStart,    // mid
		iau.TracePreempt,  // mid by small
		iau.TraceStart,    // small
		iau.TraceComplete, // small
		iau.TraceResume,   // mid
		iau.TraceComplete, // mid
		iau.TraceResume,   // big
		iau.TraceComplete, // big
	}
	if len(kinds) != len(wantKinds) {
		t.Fatalf("trace has %d events, want %d: %v", len(kinds), len(wantKinds), u.Trace)
	}
	for i := range kinds {
		if kinds[i] != wantKinds[i] {
			t.Fatalf("trace event %d = %v, want %v (%v)", i, kinds[i], wantKinds[i], u.Trace)
		}
	}
}

// TestSlotZeroNeverPreempted: a running slot-0 task is never interrupted,
// whatever arrives.
func TestSlotZeroNeverPreempted(t *testing.T) {
	cfg := accel.Big()
	u := iau.New(cfg, iau.PolicyVI)
	top := timingProg(t, model.NewVGG16(3, 60, 80), cfg, true)
	if err := u.Submit(0, &iau.Request{Label: "top", Prog: top}); err != nil {
		t.Fatal(err)
	}
	other := timingProg(t, model.NewTinyCNN(3, 16, 16), cfg, true)
	if err := u.SubmitAt(1, &iau.Request{Label: "later", Prog: other}, 100); err != nil {
		t.Fatal(err)
	}
	if err := u.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(u.Preemptions) != 0 {
		t.Fatalf("slot 0 suffered %d preemptions", len(u.Preemptions))
	}
	if u.Completions[0].Req.Label != "top" {
		t.Fatalf("slot 0 did not finish first")
	}
}

// TestCPULikeRepeatedPreemption: snapshots restore correctly across several
// preempt/resume cycles of the same request.
func TestCPULikeRepeatedPreemption(t *testing.T) {
	cfg := accel.Big()
	u := iau.New(cfg, iau.PolicyCPULike)
	victim := timingProg(t, model.NewVGG16(3, 60, 80), cfg, false)
	probe := timingProg(t, model.NewTinyCNN(3, 8, 8), cfg, false)
	if err := u.Submit(1, &iau.Request{Label: "victim", Prog: victim}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := u.SubmitAt(0, &iau.Request{Label: "probe", Prog: probe}, uint64(100000+400000*i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := u.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(u.Completions) != 6 {
		t.Fatalf("%d completions, want 6", len(u.Completions))
	}
	vict := u.Completions[len(u.Completions)-1].Req
	if vict.Label != "victim" {
		t.Fatalf("victim did not finish last")
	}
	if vict.Preemptions == 0 {
		t.Fatal("victim was never preempted")
	}
	// Every CPU-like preemption costs a full cache spill + refill.
	per := 2 * cfg.XferCycles(uint32(cfg.TotalBufferBytes()))
	want := uint64(vict.Preemptions) * per
	if vict.InterruptCost != want {
		t.Fatalf("interrupt cost %d, want %d (%d preemptions x %d)", vict.InterruptCost, want, vict.Preemptions, per)
	}
}

// TestPolicyNoneRunsToCompletion: without interrupt support a lower-priority
// task blocks higher-priority arrivals until it completes.
func TestPolicyNoneRunsToCompletion(t *testing.T) {
	cfg := accel.Big()
	u := iau.New(cfg, iau.PolicyNone)
	slow := timingProg(t, model.NewVGG16(3, 60, 80), cfg, false)
	fast := timingProg(t, model.NewTinyCNN(3, 8, 8), cfg, false)
	if err := u.Submit(1, &iau.Request{Label: "slow", Prog: slow}); err != nil {
		t.Fatal(err)
	}
	if err := u.SubmitAt(0, &iau.Request{Label: "fast", Prog: fast}, 1000); err != nil {
		t.Fatal(err)
	}
	if err := u.RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(u.Preemptions) != 0 {
		t.Fatal("PolicyNone preempted")
	}
	if u.Completions[0].Req.Label != "slow" {
		t.Fatal("priority inversion did not occur under PolicyNone")
	}
	fastReq := u.Completions[1].Req
	if fastReq.StartCycle < u.Completions[0].Req.DoneCycle {
		t.Fatal("fast task started before slow finished")
	}
}

// TestIdleJumpAccounting: gaps between arrivals are counted as idle cycles.
func TestIdleJumpAccounting(t *testing.T) {
	cfg := accel.Big()
	u := iau.New(cfg, iau.PolicyVI)
	p := timingProg(t, model.NewTinyCNN(3, 8, 8), cfg, true)
	if err := u.SubmitAt(0, &iau.Request{Label: "a", Prog: p}, 0); err != nil {
		t.Fatal(err)
	}
	if err := u.SubmitAt(0, &iau.Request{Label: "b", Prog: p}, 10_000_000); err != nil {
		t.Fatal(err)
	}
	if err := u.RunAll(); err != nil {
		t.Fatal(err)
	}
	if u.IdleCycles == 0 {
		t.Fatal("no idle cycles recorded across a 10M-cycle gap")
	}
	if u.BusyCycles+u.IdleCycles > u.Now {
		t.Fatalf("busy %d + idle %d exceeds now %d", u.BusyCycles, u.IdleCycles, u.Now)
	}
}
