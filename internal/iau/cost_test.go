package iau_test

import (
	"testing"

	"inca/internal/accel"
	"inca/internal/iau"
	"inca/internal/interrupt"
	"inca/internal/model"
)

// midFlight submits a timing-only request and runs it halfway, returning
// the IAU with the slot still in flight.
func midFlight(t *testing.T, cfg accel.Config, slot int) *iau.IAU {
	t.Helper()
	p, _ := buildFunctional(t, model.NewTinyCNN(3, 24, 32), cfg, true, 11)
	solo, err := interrupt.SoloCycles(cfg, p)
	if err != nil {
		t.Fatalf("solo: %v", err)
	}
	u := iau.New(cfg, iau.PolicyVI)
	if err := u.Submit(slot, &iau.Request{Label: "victim", Prog: p}); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if err := u.Run(solo / 2); err != nil {
		t.Fatalf("run: %v", err)
	}
	if u.SlotRequest(slot) == nil {
		t.Fatalf("slot %d not in flight after half the solo time", slot)
	}
	return u
}

// TestPreemptCostEstimateMethods pins the per-method cost query the
// predictive scheduler builds its decision table from: VI pays wait to the
// next virtual boundary plus that boundary's backup/restore pair,
// layer-by-layer pays only the wait (the next layer reloads through its own
// LOADs), CPU-like pays the full buffer spill both ways immediately, and a
// mechanism with no reachable boundary is infeasible.
func TestPreemptCostEstimateMethods(t *testing.T) {
	cfg := accel.Big()
	u := midFlight(t, cfg, 2)

	vi := u.PreemptCostEstimate(2, iau.PolicyVI)
	if !vi.Feasible {
		t.Fatal("VI infeasible on a VI-compiled program mid-flight")
	}
	if vi.Response() != vi.WaitCycles+vi.BackupCycles {
		t.Errorf("Response %d != wait %d + backup %d", vi.Response(), vi.WaitCycles, vi.BackupCycles)
	}
	if vi.Total() != vi.BackupCycles+vi.RestoreCycles {
		t.Errorf("Total %d != backup %d + restore %d", vi.Total(), vi.BackupCycles, vi.RestoreCycles)
	}

	lbl := u.PreemptCostEstimate(2, iau.PolicyLayerByLayer)
	if !lbl.Feasible {
		t.Fatal("layer-by-layer infeasible mid-flight")
	}
	if lbl.BackupCycles != 0 || lbl.RestoreCycles != 0 || lbl.Total() != 0 {
		t.Errorf("layer switch should be transfer-free, got %+v", lbl)
	}

	cpu := u.PreemptCostEstimate(2, iau.PolicyCPULike)
	if !cpu.Feasible || cpu.WaitCycles != 0 {
		t.Errorf("CPU-like preempts immediately, got %+v", cpu)
	}
	wantBuf := uint64(cfg.TotalBufferBytes())
	if cpu.BackupBytes != wantBuf || cpu.BackupCycles != cpu.RestoreCycles {
		t.Errorf("CPU-like should spill the whole buffer symmetrically, got %+v (buffer %d)", cpu, wantBuf)
	}
	if cpu.BackupCycles != cfg.XferCycles(uint32(wantBuf)) {
		t.Errorf("CPU-like backup %d cycles, want XferCycles(%d)=%d",
			cpu.BackupCycles, wantBuf, cfg.XferCycles(uint32(wantBuf)))
	}

	if mc := u.PreemptCostEstimate(2, iau.PolicyNone); mc.Feasible {
		t.Errorf("PolicyNone has no boundaries but reported feasible: %+v", mc)
	}
	if mc := u.PreemptCostEstimate(0, iau.PolicyVI); mc.Feasible {
		t.Errorf("idle slot reported a feasible preemption: %+v", mc)
	}
	if mc := u.PreemptCostEstimate(-1, iau.PolicyVI); mc.Feasible || mc.Response() != 0 {
		t.Errorf("out-of-range slot reported a cost: %+v", mc)
	}
}

// TestRemainingModelCyclesCountsDown: the IAU-side ground-truth estimator
// must shrink monotonically as the request executes and vanish with it.
func TestRemainingModelCyclesCountsDown(t *testing.T) {
	cfg := accel.Big()
	u := midFlight(t, cfg, 1)

	rem1, ok := u.RemainingModelCycles(1)
	if !ok || rem1 == 0 {
		t.Fatalf("mid-flight remaining = (%d, %v)", rem1, ok)
	}
	if err := u.Run(u.Now + rem1/2); err != nil {
		t.Fatalf("run: %v", err)
	}
	rem2, ok := u.RemainingModelCycles(1)
	if !ok || rem2 >= rem1 {
		t.Fatalf("remaining did not shrink: %d -> (%d, %v)", rem1, rem2, ok)
	}
	if err := u.RunAll(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, ok := u.RemainingModelCycles(1); ok {
		t.Error("completed slot still reports remaining cycles")
	}
	if _, ok := u.RemainingModelCycles(iau.NumSlots); ok {
		t.Error("out-of-range slot reports remaining cycles")
	}
}

// TestSchedulerQuerySurface covers the read-only accessors a scheduler
// decision uses: SlotRequest/SlotPC for the victim's stream position,
// ReadySince for token accrual, SlotFree and PeekPreempted for occupancy.
func TestSchedulerQuerySurface(t *testing.T) {
	cfg := accel.Big()
	u := midFlight(t, cfg, 1)

	req := u.SlotRequest(1)
	if req == nil || req.Label != "victim" {
		t.Fatalf("SlotRequest(1) = %+v", req)
	}
	if pc := u.SlotPC(1); pc <= 0 || pc >= len(req.Prog.Instrs) {
		t.Errorf("SlotPC(1) = %d, want a mid-stream position", pc)
	}
	if u.SlotFree(1) {
		t.Error("in-flight slot reported free")
	}
	if !u.SlotFree(2) {
		t.Error("idle slot reported busy")
	}
	if u.SlotRequest(-1) != nil || u.SlotPC(-1) != -1 {
		t.Error("out-of-range slot leaked request state")
	}
	if since := u.ReadySince(1); since > u.Now {
		t.Errorf("ReadySince(1) = %d in the future of Now=%d", since, u.Now)
	}

	// A higher-priority arrival preempts the victim; the parked request
	// must be visible to PeekPreempted without being consumed.
	p2, _ := buildFunctional(t, model.NewTinyCNN(3, 24, 32), cfg, true, 12)
	if err := u.SubmitAt(0, &iau.Request{Label: "boss", Prog: p2}, u.Now); err != nil {
		t.Fatalf("submit preemptor: %v", err)
	}
	if err := u.RunAll(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if len(u.Preemptions) == 0 {
		t.Fatal("high-priority arrival mid-flight caused no preemption")
	}
	if u.PeekPreempted(1) != nil {
		t.Error("drained run left a parked request behind")
	}
}
