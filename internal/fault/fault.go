// Package fault is a seeded, deterministic fault injector for the INCA
// stack. Every layer of the simulation exposes named fault sites (DDR
// bit-flips on interrupt backups, accelerator instruction stalls and hangs,
// lost interrupt requests, ROS message drop/delay/duplication); an Injector
// decides, reproducibly, which operations fail.
//
// Determinism: each draw is a pure function of (seed, site, per-site draw
// index). Two runs with the same seed, rates, and workload inject exactly
// the same faults, so a chaos run is as replayable as a fault-free one —
// the property the repo's determinism tests rely on.
//
// Cost when disabled: the hot paths guard every probe with a nil check
// (`if u.Faults != nil`), so a nil Injector is zero-cost — verified by
// BenchmarkEngineConv parity (DESIGN.md §9).
package fault

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Site names one fault-injection point in the stack.
type Site string

// Fault sites, by layer.
const (
	// SiteBackup flips a bit in the DDR backup blob a preemption just wrote
	// (Vir_SAVE region or CPU-like snapshot) while the victim is parked.
	SiteBackup Site = "iau.backup.bitflip"
	// SiteStall makes one accelerator instruction take StallCycles extra
	// cycles (DDR contention, refresh collision).
	SiteStall Site = "accel.instr.stall"
	// SiteHang makes one accelerator instruction never complete; only the
	// IAU watchdog can recover the slot.
	SiteHang Site = "accel.instr.hang"
	// SiteIRQLost drops the preemption request at a legal switch boundary;
	// the victim runs on to the next boundary before the IAU retries.
	SiteIRQLost Site = "iau.irq.lost"
	// SiteMsgDrop discards one ROS message delivery.
	SiteMsgDrop Site = "ros.msg.drop"
	// SiteMsgDelay adds MsgDelay to one ROS message delivery.
	SiteMsgDelay Site = "ros.msg.delay"
	// SiteMsgDup delivers one ROS message twice.
	SiteMsgDup Site = "ros.msg.dup"
)

// Sites lists every named site in deterministic order.
func Sites() []Site {
	return []Site{SiteBackup, SiteStall, SiteHang, SiteIRQLost, SiteMsgDrop, SiteMsgDelay, SiteMsgDup}
}

// SiteStats counts one site's activity.
type SiteStats struct {
	Site  Site
	Draws uint64 // probes taken at the site
	Hits  uint64 // probes that injected a fault
}

// Report summarises an injector's activity.
type Report struct {
	Seed  uint64
	Sites []SiteStats // sites with at least one draw, sorted by name
}

func (r Report) String() string {
	s := fmt.Sprintf("fault injector (seed %d):", r.Seed)
	if len(r.Sites) == 0 {
		return s + " no draws"
	}
	for _, st := range r.Sites {
		s += fmt.Sprintf("\n  %-22s %d/%d injected", st.Site, st.Hits, st.Draws)
	}
	return s
}

// Injector draws deterministic fault decisions for a set of sites. The
// zero value injects nothing; construct with New and arm sites with
// SetRate. Safe for concurrent use (multi-core dispatchers drive several
// IAUs against one injector).
type Injector struct {
	// StallCycles is the extra latency of one SiteStall hit.
	StallCycles uint64
	// MsgDelay is the extra transport latency of one SiteMsgDelay hit.
	MsgDelay time.Duration

	mu    sync.Mutex
	seed  uint64
	rates map[Site]float64
	draws map[Site]uint64
	hits  map[Site]uint64
}

// New creates an injector with every site disarmed (rate 0).
func New(seed uint64) *Injector {
	return &Injector{
		seed:        seed,
		StallCycles: 4096,
		MsgDelay:    2 * time.Millisecond,
		rates:       make(map[Site]float64),
		draws:       make(map[Site]uint64),
		hits:        make(map[Site]uint64),
	}
}

// Seed returns the injector's seed.
func (j *Injector) Seed() uint64 { return j.seed }

// SetRate arms a site with a per-probe fault probability in [0,1].
func (j *Injector) SetRate(site Site, rate float64) *Injector {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	j.mu.Lock()
	j.rates[site] = rate
	j.mu.Unlock()
	return j
}

// Rate returns a site's armed probability.
func (j *Injector) Rate(site Site) float64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rates[site]
}

// Hit draws the site's next decision: true means inject a fault here.
// Consecutive calls at one site advance its private sequence, so the
// decision stream is independent of every other site's probe order.
func (j *Injector) Hit(site Site) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	rate := j.rates[site]
	n := j.draws[site]
	j.draws[site] = n + 1
	if rate <= 0 {
		return false
	}
	hit := unitFloat(j.seed, site, n) < rate
	if hit {
		j.hits[site]++
	}
	return hit
}

// Pick returns a deterministic value in [0,n) tied to the site's last hit
// (bit index to flip, duplicate ordering, ...). n must be > 0.
func (j *Injector) Pick(site Site, n uint64) uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	// Key on the hit count so each injected fault picks afresh.
	return mix(j.seed^siteKey(site)^0x9e3779b97f4a7c15, j.hits[site]) % n
}

// Hits returns how many faults the site has injected.
func (j *Injector) Hits(site Site) uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.hits[site]
}

// TotalHits returns the number of faults injected across all sites.
func (j *Injector) TotalHits() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	var t uint64
	for _, h := range j.hits {
		t += h
	}
	return t
}

// Report snapshots per-site draw/hit counts.
func (j *Injector) Report() Report {
	j.mu.Lock()
	defer j.mu.Unlock()
	r := Report{Seed: j.seed}
	for site, d := range j.draws {
		r.Sites = append(r.Sites, SiteStats{Site: site, Draws: d, Hits: j.hits[site]})
	}
	sort.Slice(r.Sites, func(a, b int) bool { return r.Sites[a].Site < r.Sites[b].Site })
	return r
}

// ChildSeed derives a per-component seed from a parent seed and a
// component id (splitmix64 over the pair). A cluster dispatcher gives
// each engine's injector ChildSeed(seed, engineID) so the engines draw
// independent, reproducible fault streams from one top-level seed.
func ChildSeed(seed, id uint64) uint64 {
	return mix(seed^0xd6e8feb86659fd93, id)
}

// siteKey hashes a site name (FNV-1a).
func siteKey(site Site) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(site); i++ {
		h ^= uint64(site[i])
		h *= 1099511628211
	}
	return h
}

// mix is splitmix64: a bijective avalanche over (key, index).
func mix(key, n uint64) uint64 {
	z := key + 0x9e3779b97f4a7c15*(n+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// unitFloat maps (seed, site, draw index) to a uniform float64 in [0,1).
func unitFloat(seed uint64, site Site, n uint64) float64 {
	return float64(mix(seed^siteKey(site), n)>>11) / float64(1<<53)
}
