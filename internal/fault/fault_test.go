package fault_test

import (
	"math"
	"testing"

	"inca/internal/fault"
)

// TestDeterministic: same seed and probe order → identical decisions.
func TestDeterministic(t *testing.T) {
	run := func() []bool {
		j := fault.New(99)
		j.SetRate(fault.SiteBackup, 0.3)
		j.SetRate(fault.SiteStall, 0.05)
		var out []bool
		for i := 0; i < 500; i++ {
			out = append(out, j.Hit(fault.SiteBackup))
			out = append(out, j.Hit(fault.SiteStall))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs between identical runs", i)
		}
	}
}

// TestSiteIndependence: probing one site must not perturb another site's
// decision stream (each site has its own sequence counter).
func TestSiteIndependence(t *testing.T) {
	j1 := fault.New(7)
	j1.SetRate(fault.SiteHang, 0.2)
	var solo []bool
	for i := 0; i < 200; i++ {
		solo = append(solo, j1.Hit(fault.SiteHang))
	}

	j2 := fault.New(7)
	j2.SetRate(fault.SiteHang, 0.2)
	j2.SetRate(fault.SiteMsgDrop, 0.5)
	for i := 0; i < 200; i++ {
		j2.Hit(fault.SiteMsgDrop) // interleaved traffic on another site
		if got := j2.Hit(fault.SiteHang); got != solo[i] {
			t.Fatalf("hang draw %d changed when another site was probed", i)
		}
		j2.Hit(fault.SiteMsgDrop)
	}
}

// TestRateConvergence: the long-run hit fraction approaches the armed rate.
func TestRateConvergence(t *testing.T) {
	for _, rate := range []float64{0.01, 0.1, 0.5} {
		j := fault.New(12345)
		j.SetRate(fault.SiteMsgDelay, rate)
		const n = 20000
		hits := 0
		for i := 0; i < n; i++ {
			if j.Hit(fault.SiteMsgDelay) {
				hits++
			}
		}
		got := float64(hits) / n
		if math.Abs(got-rate) > 0.25*rate+0.002 {
			t.Errorf("rate %.3f: observed %.4f over %d draws", rate, got, n)
		}
	}
}

// TestDisarmedAndNilCost: unarmed sites never fire; zero/negative rates
// clamp; counters still track draws.
func TestDisarmed(t *testing.T) {
	j := fault.New(1)
	j.SetRate(fault.SiteBackup, -0.5)
	for i := 0; i < 100; i++ {
		if j.Hit(fault.SiteBackup) || j.Hit(fault.SiteStall) {
			t.Fatal("disarmed site injected a fault")
		}
	}
	rep := j.Report()
	if len(rep.Sites) != 2 {
		t.Fatalf("want 2 probed sites in report, got %d", len(rep.Sites))
	}
	for _, s := range rep.Sites {
		if s.Draws != 100 || s.Hits != 0 {
			t.Errorf("site %s: draws=%d hits=%d, want 100/0", s.Site, s.Draws, s.Hits)
		}
	}
}

// TestSeedSensitivity: different seeds give different decision streams.
func TestSeedSensitivity(t *testing.T) {
	a, b := fault.New(1), fault.New(2)
	a.SetRate(fault.SiteIRQLost, 0.5)
	b.SetRate(fault.SiteIRQLost, 0.5)
	same := 0
	for i := 0; i < 256; i++ {
		if a.Hit(fault.SiteIRQLost) == b.Hit(fault.SiteIRQLost) {
			same++
		}
	}
	if same == 256 {
		t.Fatal("seeds 1 and 2 produced identical decision streams")
	}
}

// TestPickBounds: Pick stays in range and is deterministic per hit count.
func TestPickBounds(t *testing.T) {
	j := fault.New(3)
	for n := uint64(1); n < 100; n += 7 {
		if p := j.Pick(fault.SiteBackup, n); p >= n {
			t.Fatalf("Pick(%d) = %d out of range", n, p)
		}
	}
	k := fault.New(3)
	if j.Pick(fault.SiteBackup, 1<<32) != k.Pick(fault.SiteBackup, 1<<32) {
		t.Fatal("Pick not deterministic across same-seed injectors")
	}
}
