// Package golden is the executable specification of the accelerator's
// five-op ISA (LOAD_W / LOAD_D / CALC_I / CALC_F / SAVE). It executes a
// compiled isa.Program sequentially against a DDR arena with none of the
// machinery the real stack has grown — no tiling-aware fast paths, no
// row-sliced kernels, no worker sharding, no snapshots, no preemption.
// Virtual instructions are skipped, exactly as the IAU discards them in
// uninterrupted flow.
//
// Because it is small and obviously correct, the golden interpreter is the
// contract every optimized or interrupted execution is verified against:
// the preemption-equivalence harness (internal/verify) asserts that the
// real accel+IAU+sched stack, under any interrupt schedule and any policy,
// leaves the arena bit-identical to a golden run.
//
// The interpreter is also a checker: it validates the architectural
// preconditions each instruction assumes (weights loaded for the right
// group, input rows resident, CALC_F finished before SAVE), so a compiler
// that emits an illegal stream fails here rather than producing garbage.
package golden

import (
	"encoding/binary"
	"fmt"

	"inca/internal/accel"
	"inca/internal/isa"
	"inca/internal/quant"
	"inca/internal/tensor"
)

// interp is the architectural state of the spec machine: the on-chip
// buffers whose loss on preemption the virtual instructions must repair.
type interp struct {
	p     *isa.Program
	arena []byte

	layer int // layer of the instruction last executed (-1 = none)

	// Resident input-row windows per LOAD_D selector (0 primary, 1 residual)
	// per batch element — a batched plan keeps one window register file per
	// element so the shared weights can sweep all of them.
	winLo, winHi [2][]int
	winOK        [2][]bool

	// Loaded weight blob.
	wLayer, wOG int
	bias        []int32
	weights     []int8

	// Accumulator tile: one out-channel group of one batch element at
	// convolution resolution.
	accLayer, accTile, accOG, accBat int
	accRow0, accRows                 int
	accOK                            bool
	acc                              []int32

	// Final-results tile: all out channels of one (layer, tile, element).
	finLayer, finTile, finBat int
	finRow0, finRows          int
	finOK                     bool
	fin                       []int8
	finDone                   []bool
}

// win grows the per-element window registers to cover bat and returns the
// index (identity); callers then address winLo[w][bat] etc.
func (g *interp) win(w, bat int) int {
	for len(g.winOK[w]) <= bat {
		g.winLo[w] = append(g.winLo[w], 0)
		g.winHi[w] = append(g.winHi[w], 0)
		g.winOK[w] = append(g.winOK[w], false)
	}
	return bat
}

// Run executes the program's instruction stream sequentially against the
// arena, skipping virtual instructions. On return the arena holds every
// layer's output featuremap, bit-identical to what a correct accelerator
// produces.
func Run(p *isa.Program, arena []byte) error {
	if err := p.Validate(); err != nil {
		return err
	}
	g := &interp{p: p, arena: arena, layer: -1, wLayer: -1, wOG: -1}
	for i, in := range p.Instrs {
		if in.Op == isa.OpEnd {
			break
		}
		if in.Op.Virtual() {
			continue
		}
		if err := g.exec(in); err != nil {
			return fmt.Errorf("golden: instr %d (%s): %w", i, in, err)
		}
	}
	return nil
}

// RunNet builds a fresh arena for the program, writes the input featuremap,
// runs the stream, and returns the arena.
func RunNet(p *isa.Program, input *tensor.Int8) ([]byte, error) {
	arena, err := accel.NewArena(p)
	if err != nil {
		return nil, err
	}
	if err := accel.WriteInput(arena, p, input); err != nil {
		return nil, err
	}
	if err := Run(p, arena); err != nil {
		return nil, err
	}
	return arena, nil
}

func (g *interp) exec(in isa.Instruction) error {
	if int(in.Layer) != g.layer {
		// A new layer reuses every on-chip buffer: windows, weights,
		// accumulators, and finals all become invalid.
		for w := 0; w < 2; w++ {
			for b := range g.winOK[w] {
				g.winOK[w][b] = false
			}
		}
		g.wLayer, g.wOG = -1, -1
		g.accOK, g.finOK = false, false
		g.layer = int(in.Layer)
	}
	l := &g.p.Layers[in.Layer]
	switch in.Op {
	case isa.OpLoadD:
		return g.loadD(in)
	case isa.OpLoadW:
		return g.loadW(l, in)
	case isa.OpCalcI, isa.OpCalcF:
		return g.calc(l, in)
	case isa.OpSave:
		return g.save(l, in)
	}
	return fmt.Errorf("unexpected opcode %v", in.Op)
}

// loadD extends (or re-establishes) a resident input-row window. A delta
// load adjoining the current window merges into it; a disjoint segment
// replaces it (the line buffer keeps only the new rows).
func (g *interp) loadD(in isa.Instruction) error {
	if in.Rows == 0 {
		return nil
	}
	w := int(in.Which)
	if w > 1 {
		return fmt.Errorf("load_d selector %d out of range", in.Which)
	}
	b := g.win(w, int(in.Bat))
	lo, hi := int(in.Row0), int(in.Row0)+int(in.Rows)
	if !g.winOK[w][b] || lo > g.winHi[w][b] || hi < g.winLo[w][b] {
		g.winLo[w][b], g.winHi[w][b], g.winOK[w][b] = lo, hi, true
		return nil
	}
	if hi > g.winHi[w][b] {
		g.winHi[w][b] = hi
	}
	if lo < g.winLo[w][b] {
		g.winLo[w][b] = lo
	}
	return nil
}

// loadW decodes one out-channel group's weight blob from the arena:
// [int32 bias x oCnt][int8 weights, oc-major].
func (g *interp) loadW(l *isa.LayerInfo, in isa.Instruction) error {
	oCnt := groupChannels(l.OutC, g.p.ParaOut, int(in.OutG))
	if oCnt <= 0 {
		return fmt.Errorf("load_w beyond output channels (og=%d outC=%d)", in.OutG, l.OutC)
	}
	end := int(in.Addr) + int(in.Len)
	if end > len(g.arena) || int(in.Addr) > end {
		return fmt.Errorf("load_w out of arena bounds [%d,%d) of %d", in.Addr, end, len(g.arena))
	}
	blob := g.arena[in.Addr:end]
	if len(blob) < oCnt*4 {
		return fmt.Errorf("load_w blob %d bytes, biases need %d", len(blob), oCnt*4)
	}
	g.bias = make([]int32, oCnt)
	for i := range g.bias {
		g.bias[i] = int32(binary.LittleEndian.Uint32(blob[i*4:]))
	}
	g.weights = make([]int8, len(blob)-oCnt*4)
	for i, b := range blob[oCnt*4:] {
		g.weights[i] = int8(b)
	}
	g.wLayer, g.wOG = int(in.Layer), int(in.OutG)
	return nil
}

// needRows checks that the input rows a CALC consumes are resident in the
// given selector's window for batch element bat.
func (g *interp) needRows(which, bat int, l *isa.LayerInfo, row0, rows int) error {
	c0, cn := l.ConvRows(row0, rows)
	lo := c0*l.Stride - l.Pad
	hi := (c0+cn-1)*l.Stride - l.Pad + l.KH
	if lo < 0 {
		lo = 0
	}
	if hi > l.InH {
		hi = l.InH
	}
	if hi <= lo {
		// The whole window falls in padding (possible when Pad >= KH on the
		// last stride step); no input rows are required.
		return nil
	}
	return g.needSpan(which, bat, lo, hi)
}

// needSpan checks residency of rows [lo,hi) in window (which, bat).
func (g *interp) needSpan(which, bat, lo, hi int) error {
	b := g.win(which, bat)
	if !g.winOK[which][b] || lo < g.winLo[which][b] || hi > g.winHi[which][b] {
		return fmt.Errorf("input rows [%d,%d) of element %d not resident (window valid=%v [%d,%d))",
			lo, hi, bat, g.winOK[which][b], g.winLo[which][b], g.winHi[which][b])
	}
	return nil
}

func (g *interp) calc(l *isa.LayerInfo, in isa.Instruction) error {
	row0, rows := int(in.Row0), int(in.Rows)
	bat := int(in.Bat)
	if err := g.needRows(0, bat, l, row0, rows); err != nil {
		return err
	}
	switch l.Op {
	case isa.LayerConv:
		if l.FusedAdd && in.Op == isa.OpCalcF {
			// The fused residual streams in at output geometry.
			if err := g.needSpan(1, bat, row0, row0+rows); err != nil {
				return err
			}
		}
		return g.calcConv(l, in, row0, rows)
	case isa.LayerPool:
		if in.Op != isa.OpCalcF {
			return fmt.Errorf("pool layers use a single CALC_F per blob")
		}
		g.calcPool(l, in, row0, rows)
		return nil
	case isa.LayerAdd:
		if in.Op != isa.OpCalcF {
			return fmt.Errorf("add layers use a single CALC_F per blob")
		}
		if err := g.needRows(1, bat, l, row0, rows); err != nil {
			return err
		}
		g.calcAdd(l, in, row0, rows)
		return nil
	}
	return fmt.Errorf("unknown layer op %v", l.Op)
}

// in8 reads one int8 input sample, or 0 outside the featuremap (padding).
func (g *interp) in8(base uint32, c, y, x, h, w int) int32 {
	if y < 0 || y >= h || x < 0 || x >= w {
		return 0
	}
	return int32(int8(g.arena[int(base)+(c*h+y)*w+x]))
}

// calcConv accumulates one input-channel group's contribution to the
// accumulator tile (CALC_I) and, on CALC_F, requantizes the finished group
// into the finals tile — per output pixel, with no clipping shortcuts.
func (g *interp) calcConv(l *isa.LayerInfo, in isa.Instruction, row0, rows int) error {
	if g.wLayer != int(in.Layer) || g.wOG != int(in.OutG) {
		return fmt.Errorf("weights for layer %d og %d not loaded (have %d/%d)", in.Layer, in.OutG, g.wLayer, g.wOG)
	}
	oc0 := int(in.OutG) * g.p.ParaOut
	oCnt := groupChannels(l.OutC, g.p.ParaOut, int(in.OutG))
	if oCnt <= 0 {
		return fmt.Errorf("calc beyond output channels (og=%d outC=%d)", in.OutG, l.OutC)
	}
	depthwise := l.Groups == l.InC && l.Groups > 1
	crow0, crows := l.ConvRows(row0, rows)
	convW := l.ConvW()
	bat := int(in.Bat)
	inAddr := l.InAddr + uint32(bat*l.InPlane())

	if in.InG == 0 {
		g.accLayer, g.accTile, g.accOG, g.accBat = int(in.Layer), int(in.Tile), int(in.OutG), bat
		g.accRow0, g.accRows = row0, rows
		g.acc = make([]int32, oCnt*crows*convW)
		g.accOK = true
	} else if !g.accOK || g.accLayer != int(in.Layer) || g.accTile != int(in.Tile) || g.accOG != int(in.OutG) || g.accBat != bat {
		return fmt.Errorf("accumulator tile mismatch: have l%d t%d og%d b%d valid=%v, want l%d t%d og%d b%d",
			g.accLayer, g.accTile, g.accOG, g.accBat, g.accOK, in.Layer, in.Tile, in.OutG, bat)
	}

	// Input channels this CALC covers.
	ic0, ic1 := 0, 0
	if !depthwise {
		ic0 = int(in.InG) * g.p.ParaIn
		ic1 = ic0 + g.p.ParaIn
		if ic1 > l.InC {
			ic1 = l.InC
		}
		if ic1 <= ic0 {
			return fmt.Errorf("calc beyond input channels (ig=%d inC=%d)", in.InG, l.InC)
		}
	}
	wpo := l.InC * l.KH * l.KW // weights per output channel
	if depthwise {
		wpo = l.KH * l.KW
	}
	for o := 0; o < oCnt; o++ {
		oc := oc0 + o
		for r := 0; r < crows; r++ {
			oy := crow0 + r
			for ox := 0; ox < convW; ox++ {
				var sum int32
				if depthwise {
					for ky := 0; ky < l.KH; ky++ {
						for kx := 0; kx < l.KW; kx++ {
							sum += g.in8(inAddr, oc, oy*l.Stride+ky-l.Pad, ox*l.Stride+kx-l.Pad, l.InH, l.InW) *
								int32(g.weights[o*wpo+ky*l.KW+kx])
						}
					}
				} else {
					for ic := ic0; ic < ic1; ic++ {
						for ky := 0; ky < l.KH; ky++ {
							for kx := 0; kx < l.KW; kx++ {
								sum += g.in8(inAddr, ic, oy*l.Stride+ky-l.Pad, ox*l.Stride+kx-l.Pad, l.InH, l.InW) *
									int32(g.weights[o*wpo+(ic*l.KH+ky)*l.KW+kx])
							}
						}
					}
				}
				g.acc[(o*crows+r)*convW+ox] += sum
			}
		}
	}
	if in.Op != isa.OpCalcF {
		return nil
	}

	// CALC_F epilogue: bias, shift, ReLU, saturate; max-pool the fp x fp
	// window when pooling is fused into the layer.
	g.ensureFinals(l, in, row0, rows)
	fp := l.FusedPool
	if fp <= 1 {
		fp = 1
	}
	for o := 0; o < oCnt; o++ {
		oc := oc0 + o
		for r := 0; r < rows; r++ {
			for ox := 0; ox < l.OutW; ox++ {
				m := int8(-128)
				for py := 0; py < fp; py++ {
					for px := 0; px < fp; px++ {
						a := g.acc[(o*(rows*fp)+r*fp+py)*convW+ox*fp+px]
						if v := quant.Requantize(a, g.bias[o], l.Shift, l.ReLU); v > m {
							m = v
						}
					}
				}
				if l.FusedAdd {
					// Fused residual epilogue: add the aligned residual pixel
					// exactly as a standalone Add layer reading this layer's
					// requantized output back from DDR would.
					resAddr := int(l.In2Addr) + bat*l.OutPlane() + (oc*l.OutH+row0+r)*l.OutW + ox
					m = quant.SaturateAdd(m, int8(g.arena[resAddr])>>l.AddShift, l.AddReLU)
				}
				g.fin[(oc*rows+r)*l.OutW+ox] = m
			}
		}
	}
	g.finDone[in.OutG] = true
	g.accOK = false
	return nil
}

func (g *interp) calcPool(l *isa.LayerInfo, in isa.Instruction, row0, rows int) {
	g.ensureFinals(l, in, row0, rows)
	batOff := int(in.Bat) * l.InPlane()
	oc0 := int(in.OutG) * g.p.ParaOut
	oc1 := oc0 + groupChannels(l.OutC, g.p.ParaOut, int(in.OutG))
	for oc := oc0; oc < oc1; oc++ {
		for r := 0; r < rows; r++ {
			oy := row0 + r
			for ox := 0; ox < l.OutW; ox++ {
				m := int8(-128)
				for ky := 0; ky < l.KH; ky++ {
					for kx := 0; kx < l.KW; kx++ {
						iy, ix := oy*l.Stride+ky, ox*l.Stride+kx
						if iy >= l.InH || ix >= l.InW {
							continue
						}
						if v := int8(g.arena[int(l.InAddr)+batOff+(oc*l.InH+iy)*l.InW+ix]); v > m {
							m = v
						}
					}
				}
				g.fin[(oc*rows+r)*l.OutW+ox] = m
			}
		}
	}
	g.finDone[in.OutG] = true
}

func (g *interp) calcAdd(l *isa.LayerInfo, in isa.Instruction, row0, rows int) {
	g.ensureFinals(l, in, row0, rows)
	batOff := int(in.Bat) * l.InPlane()
	oc0 := int(in.OutG) * g.p.ParaOut
	oc1 := oc0 + groupChannels(l.OutC, g.p.ParaOut, int(in.OutG))
	for oc := oc0; oc < oc1; oc++ {
		for r := 0; r < rows; r++ {
			y := row0 + r
			for x := 0; x < l.OutW; x++ {
				a := int8(g.arena[int(l.InAddr)+batOff+(oc*l.InH+y)*l.InW+x])
				b := int8(g.arena[int(l.In2Addr)+batOff+(oc*l.InH+y)*l.InW+x])
				g.fin[(oc*rows+r)*l.OutW+x] = quant.SaturateAdd(a, b>>l.Shift, l.ReLU)
			}
		}
	}
	g.finDone[in.OutG] = true
}

// ensureFinals (re)establishes the finals tile for the instruction's
// (layer, tile, batch element).
func (g *interp) ensureFinals(l *isa.LayerInfo, in isa.Instruction, row0, rows int) {
	if g.finOK && g.finLayer == int(in.Layer) && g.finTile == int(in.Tile) && g.finBat == int(in.Bat) {
		return
	}
	g.finLayer, g.finTile, g.finBat = int(in.Layer), int(in.Tile), int(in.Bat)
	g.finRow0, g.finRows = row0, rows
	g.fin = make([]int8, l.OutC*rows*l.OutW)
	g.finDone = make([]bool, l.NOut)
	g.finOK = true
}

// save commits the finals tile's out-channel groups [InG, OutG] to DDR at
// the instruction's batch element's output plane.
func (g *interp) save(l *isa.LayerInfo, in isa.Instruction) error {
	row0, rows := int(in.Row0), int(in.Rows)
	if rows == 0 {
		return nil
	}
	if !g.finOK || g.finLayer != int(in.Layer) || g.finTile != int(in.Tile) || g.finBat != int(in.Bat) {
		return fmt.Errorf("save of tile l%d t%d b%d but finals hold l%d t%d b%d (valid=%v)",
			in.Layer, in.Tile, in.Bat, g.finLayer, g.finTile, g.finBat, g.finOK)
	}
	c0 := int(in.InG) * g.p.ParaOut
	endC := (int(in.OutG) + 1) * g.p.ParaOut
	if endC > l.OutC {
		endC = l.OutC
	}
	if got, want := int(in.Len), (endC-c0)*rows*l.OutW; got != want {
		return fmt.Errorf("save window [%d,%d) length %d, instruction says %d", c0, endC, want, got)
	}
	batOff := int(in.Bat) * l.OutPlane()
	for oc := c0; oc < endC; oc++ {
		if oc < 0 || oc >= l.OutC {
			return fmt.Errorf("save channel %d outside layer channels %d", oc, l.OutC)
		}
		if !g.finDone[oc/g.p.ParaOut] {
			return fmt.Errorf("save of channel %d (group %d) before CALC_F finished it", oc, oc/g.p.ParaOut)
		}
		for r := 0; r < rows; r++ {
			for x := 0; x < l.OutW; x++ {
				g.arena[int(l.OutAddr)+batOff+(oc*l.OutH+row0+r)*l.OutW+x] = byte(g.fin[(oc*rows+r)*l.OutW+x])
			}
		}
	}
	return nil
}

// groupChannels returns how many channels out-channel group og actually
// covers (the last group may be partial).
func groupChannels(outC, paraOut, og int) int {
	n := outC - og*paraOut
	if n > paraOut {
		n = paraOut
	}
	return n
}
