package golden_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"inca/internal/accel"
	"inca/internal/compiler"
	"inca/internal/golden"
	"inca/internal/isa"
	"inca/internal/model"
	"inca/internal/quant"
	"inca/internal/tensor"
)

// The golden interpreter is the spec everything else is judged against, so
// it is itself validated two independent ways: against the network-level
// software reference (quant.Run — no ISA, no tiling, just math) and against
// the real engine executing the same stream straight-line (full-arena byte
// equality, covering every intermediate featuremap).

func compile(t *testing.T, g *model.Network, cfg accel.Config, seed uint64, vi bool) *isa.Program {
	t.Helper()
	q, err := quant.Synthesize(g, seed)
	if err != nil {
		t.Fatalf("%s: synthesize: %v", g.Name, err)
	}
	opt := cfg.CompilerOptions()
	opt.VI = compiler.VIIf(vi)
	opt.EmitWeights = true
	p, err := compiler.Compile(q, opt)
	if err != nil {
		t.Fatalf("%s: compile: %v", g.Name, err)
	}
	return p
}

func input(g *model.Network, seed uint64) *tensor.Int8 {
	in := tensor.NewInt8(g.InC, g.InH, g.InW)
	tensor.FillPattern(in, seed)
	return in
}

// TestGoldenMatchesNetworkReference: the final featuremap the interpreter
// leaves in the arena equals what the network-level integer reference
// computes — across the functional zoo with and without virtual
// instructions in the stream (golden must skip them).
func TestGoldenMatchesNetworkReference(t *testing.T) {
	cfg := accel.Big()
	cfg.ParaIn, cfg.ParaOut, cfg.ParaHeight = 4, 4, 3
	for _, g := range []*model.Network{
		model.NewTinyCNN(3, 14, 18),
		model.NewResNetTiny(),
		model.NewMobileNetTiny(),
		model.NewPoolNet(),
	} {
		for _, vi := range []bool{false, true} {
			p := compile(t, g, cfg, 7, vi)
			in := input(g, 42)
			arena, err := golden.RunNet(p, in)
			if err != nil {
				t.Fatalf("%s (vi=%v): golden run: %v", g.Name, vi, err)
			}
			got, err := accel.ReadOutput(arena, p)
			if err != nil {
				t.Fatal(err)
			}
			q, err := quant.Synthesize(g, 7)
			if err != nil {
				t.Fatal(err)
			}
			want, err := q.RunFinal(in)
			if err != nil {
				t.Fatalf("%s: reference run: %v", g.Name, err)
			}
			if !bytes.Equal(int8Bytes(got.Data), int8Bytes(want.Data)) {
				t.Errorf("%s (vi=%v): golden output differs from network reference", g.Name, vi)
			}
		}
	}
}

// TestGoldenMatchesEngineArena: over randomized networks, the interpreter's
// whole arena — every layer's output region, not just the last — is
// byte-identical to the real engine executing the same stream with no
// interrupts. This is the link the preemption-equivalence harness stands on.
func TestGoldenMatchesEngineArena(t *testing.T) {
	cfgs := []accel.Config{accel.Big(), accel.Big()}
	cfgs[0].ParaIn, cfgs[0].ParaOut, cfgs[0].ParaHeight = 4, 4, 3
	cfgs[1].ParaIn, cfgs[1].ParaOut, cfgs[1].ParaHeight = 8, 8, 4
	rng := rand.New(rand.NewSource(260805))
	const wantCases = 20
	cases := 0
	for attempt := 0; attempt < 400 && cases < wantCases; attempt++ {
		g := randomNet(rng, attempt)
		if g.Validate() != nil {
			continue
		}
		cfg := cfgs[attempt%len(cfgs)]
		q, err := quant.Synthesize(g, uint64(attempt)+1)
		if err != nil {
			continue
		}
		opt := cfg.CompilerOptions()
		opt.VI = compiler.VIIf(attempt%2 == 0)
		opt.EmitWeights = true
		p, err := compiler.Compile(q, opt)
		if err != nil {
			continue
		}
		cases++
		in := input(g, uint64(attempt)*13+5)

		want, err := golden.RunNet(p, in)
		if err != nil {
			t.Fatalf("net %d (%s): golden: %v", attempt, g.Summary(), err)
		}

		got, err := accel.NewArena(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := accel.WriteInput(got, p, in); err != nil {
			t.Fatal(err)
		}
		eng := accel.NewEngine(cfg)
		for _, ins := range p.Instrs {
			if ins.Op.Virtual() || ins.Op == isa.OpEnd {
				continue
			}
			if _, err := eng.Exec(got, p, ins, 0); err != nil {
				t.Fatalf("net %d (%s): engine: exec %s: %v", attempt, g.Summary(), ins, err)
			}
		}
		eng.Close()
		if !bytes.Equal(want, got) {
			n, first := 0, -1
			for i := range want {
				if want[i] != got[i] {
					n++
					if first < 0 {
						first = i
					}
				}
			}
			t.Errorf("net %d (%s): engine arena differs from golden at %d bytes (first at %d)",
				attempt, g.Summary(), n, first)
		}
	}
	if cases < wantCases {
		t.Fatalf("only %d/%d random configs compiled", cases, wantCases)
	}
}

// TestGoldenChecksStreamLegality: the interpreter doubles as a stream
// checker — deleting a load or reordering a save produces an error, not
// silent garbage.
func TestGoldenChecksStreamLegality(t *testing.T) {
	cfg := accel.Big()
	cfg.ParaIn, cfg.ParaOut, cfg.ParaHeight = 4, 4, 3
	g := model.NewTinyCNN(3, 12, 12)
	p := compile(t, g, cfg, 3, false)
	in := input(g, 1)

	drop := func(match func(isa.Instruction) bool) *isa.Program {
		cp := *p
		cp.Instrs = nil
		dropped := false
		for _, ins := range p.Instrs {
			if !dropped && match(ins) {
				dropped = true
				continue
			}
			cp.Instrs = append(cp.Instrs, ins)
		}
		if !dropped {
			t.Fatal("stream tamper matched nothing")
		}
		return &cp
	}

	cases := []struct {
		name string
		mut  *isa.Program
	}{
		{"missing LOAD_D", drop(func(i isa.Instruction) bool { return i.Op == isa.OpLoadD })},
		{"missing LOAD_W", drop(func(i isa.Instruction) bool { return i.Op == isa.OpLoadW })},
		{"missing CALC_F", drop(func(i isa.Instruction) bool { return i.Op == isa.OpCalcF })},
	}
	for _, c := range cases {
		if _, err := golden.RunNet(c.mut, in); err == nil {
			t.Errorf("%s: interpreter accepted an illegal stream", c.name)
		} else {
			t.Logf("%s: %v", c.name, err)
		}
	}
}

// randomNet mirrors the accel differential generator: a small network mixing
// dense / pointwise / depthwise / fused-pool convolutions, pools and adds.
func randomNet(rng *rand.Rand, idx int) *model.Network {
	c := 1 + rng.Intn(6)
	h := 8 + 2*rng.Intn(7)
	w := 8 + 2*rng.Intn(7)
	n := model.New(fmt.Sprintf("rand%d", idx), c, h, w)
	cur := 0
	for i := 0; i < 1+rng.Intn(3); i++ {
		relu := rng.Intn(2) == 0
		switch rng.Intn(6) {
		case 0:
			k := []int{1, 3, 5}[rng.Intn(3)]
			stride := 1 + rng.Intn(2)
			pad := rng.Intn(k/2 + 2)
			cur = n.Conv(fmt.Sprintf("conv%d", i), cur, 1+rng.Intn(10), k, stride, pad, relu)
		case 1:
			cur = n.DWConv(fmt.Sprintf("dw%d", i), cur, 3, 1+rng.Intn(2), 1, relu)
		case 2:
			cur = n.Add(model.Layer{
				Name: fmt.Sprintf("convp%d", i), Kind: model.KindConv, Inputs: []int{cur},
				OutC: 1 + rng.Intn(8), KH: 3, KW: 3, Stride: 1, Pad: 1, Groups: 1,
				ReLU: relu, FusedPool: 2,
			})
		case 3:
			cur = n.MaxPool(fmt.Sprintf("pool%d", i), cur, 2+rng.Intn(2), 2)
		case 4:
			outC := 1 + rng.Intn(8)
			a := n.Conv(fmt.Sprintf("res%da", i), cur, outC, 3, 1, 1, true)
			b := n.Conv(fmt.Sprintf("res%db", i), cur, outC, 1, 1, 0, false)
			// (b, a) fuses the Add into conv b's epilogue; the reverse keeps
			// the standalone Add — both must track the golden interpreter.
			if rng.Intn(2) == 0 {
				cur = n.Residual(fmt.Sprintf("res%d", i), b, a, relu)
			} else {
				cur = n.Residual(fmt.Sprintf("res%d", i), a, b, relu)
			}
		case 5:
			cur = n.Conv(fmt.Sprintf("pw%d", i), cur, 1+rng.Intn(12), 1, 1, 0, relu)
		}
	}
	return n
}

func int8Bytes(s []int8) []byte {
	b := make([]byte, len(s))
	for i, v := range s {
		b[i] = byte(v)
	}
	return b
}
