// Latency: sweep interrupt response latency across networks and accelerator
// configurations (the shape of the paper's Fig. 5), mixing the analytical
// worst-case model with end-to-end measurements on the simulator.
//
//	go run ./examples/latency [-measure]
package main

import (
	"flag"
	"fmt"
	"log"

	"inca/internal/accel"
	"inca/internal/compiler"
	"inca/internal/iau"
	"inca/internal/interrupt"
	"inca/internal/model"
	"inca/internal/quant"
)

func main() {
	measure := flag.Bool("measure", true, "also measure end-to-end on the simulator")
	h := flag.Int("h", 120, "input height")
	w := flag.Int("w", 160, "input width")
	flag.Parse()

	resnet, err := model.NewResNet(101, 3, *h, *w)
	check(err)
	nets := []*model.Network{resnet, model.NewVGG16(3, *h, *w), model.NewMobileNetV1(3, *h, *w)}
	cfgs := []accel.Config{accel.Big(), accel.Small()}

	fmt.Printf("%-12s %-16s %14s %14s %10s\n", "network", "accelerator", "layer wait", "VI wait", "reduction")
	for _, g := range nets {
		for _, cfg := range cfgs {
			st, err := interrupt.WorstWaits(cfg, g)
			check(err)
			avgL := cfg.CyclesToMicros(uint64(interrupt.Mean(st.LayerLBL)))
			avgV := cfg.CyclesToMicros(uint64(interrupt.Mean(st.LayerVI)))
			fmt.Printf("%-12s %-16s %11.1f us %11.1f us %9.0fx\n",
				g.Name, cfg.Name, avgL, avgV, avgL/avgV)
		}
	}

	if !*measure {
		return
	}
	fmt.Println("\nend-to-end measurement (ResNet-101 victim on the big accelerator):")
	cfg := accel.Big()
	q, err := quant.Synthesize(resnet, 1)
	check(err)
	opt := cfg.CompilerOptions()
	opt.VI = compiler.VIEvery{}
	victim, err := compiler.Compile(q, opt)
	check(err)
	probe, err := interrupt.TinyPreemptor(cfg)
	check(err)
	total, err := interrupt.SoloCycles(cfg, victim)
	check(err)
	fmt.Printf("solo inference: %.1f ms\n", cfg.CyclesToMicros(total)/1000)
	for i := 1; i <= 4; i++ {
		pos := total * uint64(i) / 5
		for _, pol := range []iau.Policy{iau.PolicyLayerByLayer, iau.PolicyVI} {
			m, err := interrupt.MeasureAt(cfg, pol, victim, probe, pos)
			check(err)
			fmt.Printf("  %d/5 through, %-20v latency %8.1f us  extra cost %8.1f us  (layer %s)\n",
				i, pol, m.LatencyMicros(cfg), m.CostMicros(cfg), m.VictimLayer)
		}
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
