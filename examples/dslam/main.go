// DSLAM: the paper's evaluation system as a library call — two agents
// exploring the synthetic arena, each with its own simulated accelerator
// running FE (high priority) and PR (interruptible), maps merged when place
// recognition finds a cross-agent match.
//
//	go run ./examples/dslam
package main

import (
	"fmt"
	"log"
	"time"

	"inca/internal/slam"
)

func main() {
	cfg := slam.DefaultDSLAMConfig()
	cfg.Duration = 20 * time.Second

	res, err := slam.RunDSLAM(cfg)
	if err != nil {
		log.Fatal(err)
	}

	for i, a := range res.Agents {
		fmt.Printf("agent %d: %d frames, FE %d done / %d misses, VO drift %.2f m, PR every %.1f frames, %d preemptions\n",
			i, a.Frames, a.FEDone, a.FEMisses, a.DriftEnd, a.PRMeanGapFrames, a.Preempts)
	}
	if !res.Merged() {
		fmt.Println("no cross-agent match found — try a longer mission")
		return
	}
	m := res.Matches[0]
	fmt.Printf("\nmaps merged at t=%v: similarity %.3f, %d feature correspondences\n",
		res.FirstMergeTime.Round(time.Millisecond), m.Similarity, m.Matches)
	fmt.Printf("inter-map transform: (%.2f, %.2f, %.3f rad), error %.2f m / %.3f rad\n",
		m.TAB.X, m.TAB.Y, m.TAB.Theta, m.ErrTrans, m.ErrRot)
	fmt.Printf("merged-map trajectory error: %.2f m over %d matches total\n",
		res.MergedError, len(res.Matches))
}
