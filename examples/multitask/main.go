// Multitask: four independently-authored ROS nodes share one accelerator
// through the INCA runtime — the scenario the paper's IAU is built for
// (four priority slots, slot 0 never preempted). Each node submits
// inferences on its own schedule without knowing the others exist.
//
//	go run ./examples/multitask
package main

import (
	"fmt"
	"log"
	"time"

	"inca/internal/accel"
	"inca/internal/core"
	"inca/internal/iau"
	"inca/internal/model"
	"inca/internal/ros"
)

func main() {
	cfg := accel.Big()
	rt, err := core.NewRuntime(cfg, iau.PolicyVI)
	check(err)

	// Four components from four "developers", by priority:
	//  0: obstacle detector — hard 30 ms deadline, 25 ms period
	//  1: feature extraction — 50 ms period
	//  2: place recognition — continuous
	//  3: semantic segmentation — continuous
	gem, err := model.NewGeM(3, 120, 160)
	check(err)
	deploys := []struct {
		name string
		net  *model.Network
	}{
		{"detector", model.NewTinyCNN(3, 60, 80)},
		{"feature-extraction", model.NewSuperPoint(90, 120)},
		{"place-recognition", gem},
		{"segmentation", model.NewVGG16(3, 90, 120)},
	}
	var handles [4]*core.Deployment
	for slot, d := range deploys {
		h, err := rt.Deploy(slot, d.net, uint64(slot+1))
		check(err)
		handles[slot] = h
		fmt.Printf("slot %d: %-20s %6d instructions\n", slot, d.name, len(h.Prog.Instrs))
	}

	// Wire the middleware: each node runs its own loop.
	rc := ros.NewCore()
	rt.AttachROS(rc, 200*time.Microsecond)

	type stats struct {
		done    int
		missed  int
		latency time.Duration
	}
	results := make([]stats, 4)

	// Periodic nodes (slots 0 and 1).
	for _, p := range []struct {
		slot     int
		period   time.Duration
		deadline time.Duration
	}{
		{0, 25 * time.Millisecond, 30 * time.Millisecond},
		{1, 50 * time.Millisecond, 50 * time.Millisecond},
	} {
		p := p
		node := rc.Node(deploys[p.slot].name)
		_, err := node.Timer(p.period, func() {
			start := rc.Now()
			err := handles[p.slot].InferAsync(core.InferCallbacks{OnDone: func(done ros.Time) {
				lat := done - start
				results[p.slot].done++
				results[p.slot].latency += lat
				if lat > p.deadline {
					results[p.slot].missed++
				}
			}})
			check(err)
		})
		check(err)
	}

	// Continuous nodes (slots 2 and 3) resubmit on completion.
	for _, slot := range []int{2, 3} {
		slot := slot
		var fire func()
		fire = func() {
			start := rc.Now()
			err := handles[slot].InferAsync(core.InferCallbacks{OnDone: func(done ros.Time) {
				results[slot].done++
				results[slot].latency += done - start
				fire()
			}})
			check(err)
		}
		rc.After(time.Millisecond, fire)
	}

	horizon := 5 * time.Second
	rc.Run(horizon)
	rt.DetachROS()

	fmt.Printf("\nafter %v of simulated time:\n", horizon)
	fmt.Printf("%-20s %6s %6s %12s\n", "task", "done", "miss", "mean latency")
	for slot, d := range deploys {
		r := results[slot]
		mean := time.Duration(0)
		if r.done > 0 {
			mean = r.latency / time.Duration(r.done)
		}
		fmt.Printf("%-20s %6d %6d %12v\n", d.name, r.done, r.missed, mean.Round(10*time.Microsecond))
	}
	var preempts int
	for _, p := range rt.U.Preemptions {
		_ = p
		preempts++
	}
	fmt.Printf("\n%d preemptions; accelerator busy %.0f%% of the run\n",
		preempts, 100*float64(rt.U.BusyCycles)/float64(cfg.SecondsToCycles(horizon.Seconds())))
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
