// Calibrate: the complete Fig. 1 deployment flow on a user-supplied network
// description — parse a Caffe-style prototxt, build a float model, calibrate
// activation ranges over sample inputs, quantize to the accelerator's int8
// datapath, compile to interruptible VI-ISA, and verify the compiled program
// against both the int8 reference and the float model.
//
//	go run ./examples/calibrate
package main

import (
	"fmt"
	"log"
	"math"

	"inca/internal/accel"
	"inca/internal/compiler"
	"inca/internal/iau"
	"inca/internal/model"
	"inca/internal/quant"
	"inca/internal/tensor"
)

const netDescription = `
name: "robot-head"
input_shape { dim: 3 dim: 48 dim: 64 }
layer {
  name: "conv1" type: "Convolution" bottom: "data" top: "conv1"
  convolution_param { num_output: 16 kernel_size: 3 stride: 1 pad: 1 }
}
layer { name: "relu1" type: "ReLU" bottom: "conv1" top: "conv1" }
layer {
  name: "pool1" type: "Pooling" bottom: "conv1" top: "pool1"
  pooling_param { pool: MAX kernel_size: 2 stride: 2 }
}
layer {
  name: "conv2" type: "Convolution" bottom: "pool1" top: "conv2"
  convolution_param { num_output: 32 kernel_size: 3 stride: 1 pad: 1 }
}
layer { name: "relu2" type: "ReLU" bottom: "conv2" top: "conv2" }
layer {
  name: "conv2b" type: "Convolution" bottom: "conv2" top: "conv2b"
  convolution_param { num_output: 32 kernel_size: 3 stride: 1 pad: 1 }
}
layer { name: "sum" type: "Eltwise" bottom: "conv2b" bottom: "conv2" top: "sum" }
layer { name: "relu3" type: "ReLU" bottom: "sum" top: "sum" }
`

func main() {
	// 1. Parse the network description (the *.prototxt of the paper's flow).
	g, err := model.ParsePrototxt(netDescription)
	check(err)
	fmt.Print(g.Summary())

	// 2. Float model (the *.caffemodel stand-in) and calibration set.
	fn, err := quant.SynthesizeFloat(g, 2026)
	check(err)
	var samples []*tensor.Float32
	for s := uint64(0); s < 8; s++ {
		in := tensor.NewFloat32(g.InC, g.InH, g.InW)
		tensor.FillPatternFloat32(in, 500+s)
		samples = append(samples, in)
	}
	cal, err := fn.Calibrate(samples)
	check(err)
	fmt.Printf("\ncalibrated %d activation scales (input scale %.4f)\n", len(cal.ActScale), cal.ActScale[0])

	// 3. Quantize to the accelerator's shift-only int8 datapath.
	q, err := fn.Quantize(cal)
	check(err)

	// 4. Compile to interruptible VI-ISA with the weight image embedded.
	cfg := accel.Big()
	cfg.ParaIn, cfg.ParaOut, cfg.ParaHeight = 8, 8, 4
	opt := cfg.CompilerOptions()
	opt.VI = compiler.VIEvery{}
	opt.EmitWeights = true
	prog, err := compiler.Compile(q, opt)
	check(err)
	fmt.Printf("\ncompiled: %v", compiler.Analyze(prog))

	// 5. Run a held-out input on the simulated accelerator.
	probe := tensor.NewFloat32(g.InC, g.InH, g.InW)
	tensor.FillPatternFloat32(probe, 9999)
	qin := quant.QuantizeInput(probe, cal)

	arena, err := accel.NewArena(prog)
	check(err)
	check(accel.WriteInput(arena, prog, qin))
	u := iau.New(cfg, iau.PolicyVI)
	check(u.Submit(1, &iau.Request{Label: "robot-head", Prog: prog, Arena: arena}))
	check(u.RunAll())
	got, err := accel.ReadOutput(arena, prog)
	check(err)
	req := u.Completions[0].Req
	fmt.Printf("inference: %.1f us simulated on %s\n",
		cfg.CyclesToMicros(req.ExecCycles), cfg.Name)

	// 6a. Bit-exactness against the int8 software reference.
	want, err := q.RunFinal(qin)
	check(err)
	if !got.Equal(want) {
		log.Fatal("accelerator output differs from the int8 reference")
	}
	fmt.Println("accelerator output is bit-exact vs the int8 reference ✓")

	// 6b. Fidelity against the float model.
	floatActs, err := fn.RunFloat(probe)
	check(err)
	last := len(g.Layers) - 1
	scale := q.EffScale[last]
	deq := quant.DequantizeOutput(got, scale)
	cos, err := tensor.CosineSimilarity(deq, floatActs[last])
	check(err)
	fmt.Printf("int8 vs float cosine similarity: %.4f", cos)
	if math.IsNaN(cos) || cos < 0.9 {
		log.Fatalf(" — quantization fidelity too low")
	}
	fmt.Println(" ✓")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
