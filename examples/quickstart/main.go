// Quickstart: compile a small CNN to the interruptible VI-ISA, run it on
// the functional accelerator simulator while a high-priority task preempts
// it repeatedly, and verify the output is bit-exact against the software
// reference — the core INCA guarantee.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"inca/internal/accel"
	"inca/internal/compiler"
	"inca/internal/iau"
	"inca/internal/model"
	"inca/internal/quant"
	"inca/internal/tensor"
)

func main() {
	// 1. Describe the networks: a background CNN and a small high-priority
	// CNN that will keep stealing the accelerator from it.
	background := model.NewResNetTiny()
	urgent := model.NewTinyCNN(3, 16, 16)

	// 2. Quantize (synthetic int8 parameters) and compile both for the
	// "big" Angel-Eye-style configuration. The background task gets the
	// virtual-instruction pass so it can be interrupted mid-layer.
	cfg := accel.Big()
	cfg.ParaIn, cfg.ParaOut, cfg.ParaHeight = 4, 4, 3 // small enough to tile visibly

	bgQ, err := quant.Synthesize(background, 1)
	check(err)
	opt := cfg.CompilerOptions()
	opt.VI = compiler.VIEvery{}
	opt.EmitWeights = true
	bgProg, err := compiler.Compile(bgQ, opt)
	check(err)
	fmt.Printf("compiled %s: %v\n", background.Name, compiler.Analyze(bgProg))

	urgQ, err := quant.Synthesize(urgent, 2)
	check(err)
	opt.VI = compiler.VINone{} // slot 0 is never preempted
	urgProg, err := compiler.Compile(urgQ, opt)
	check(err)

	// 3. Golden reference: run the background network on the plain software
	// executor.
	input := tensor.NewInt8(background.InC, background.InH, background.InW)
	tensor.FillPattern(input, 99)
	want, err := bgQ.RunFinal(input)
	check(err)

	// 4. Run it on the simulated accelerator under the IAU, firing the
	// urgent task at it every 40k cycles.
	arena, err := accel.NewArena(bgProg)
	check(err)
	check(accel.WriteInput(arena, bgProg, input))

	u := iau.New(cfg, iau.PolicyVI)
	check(u.Submit(1, &iau.Request{Label: "background", Prog: bgProg, Arena: arena}))
	for i := 0; i < 6; i++ {
		ua, err := accel.NewArena(urgProg)
		check(err)
		uin := tensor.NewInt8(urgent.InC, urgent.InH, urgent.InW)
		tensor.FillPattern(uin, uint64(i))
		check(accel.WriteInput(ua, urgProg, uin))
		check(u.SubmitAt(0, &iau.Request{Label: "urgent", Prog: urgProg, Arena: ua}, uint64(5000+40000*i)))
	}
	check(u.RunAll())

	// 5. The background task was preempted — and its output is identical.
	got, err := accel.ReadOutput(arena, bgProg)
	check(err)
	fmt.Printf("\npreemptions suffered by the background task: %d\n", len(u.Preemptions))
	for i, p := range u.Preemptions {
		fmt.Printf("  #%d at layer %-12s latency %6.1f us  backup %6d B  restore %6d B\n",
			i, p.VictimLayer, cfg.CyclesToMicros(p.Latency()), p.BackupBytes, p.ResumeBytes)
	}
	if got.Equal(want) {
		fmt.Println("\noutput is BIT-EXACT versus the uninterrupted software reference ✓")
	} else {
		log.Fatal("output differs from reference — this should never happen")
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
