// inca-bench regenerates the paper's tables and figures on the simulated
// stack (see DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	inca-bench -e all -scale full
//	inca-bench -e E1,E3 -scale quick
//	inca-bench -e E2 -cpuprofile cpu.pprof -benchjson results.json
//	inca-bench -suite=datapath -snapshot BENCH_datapath.json  (refresh a baseline)
//	inca-bench -suite=datapath -gate BENCH_datapath.json      (fail on regression)
//	inca-bench -suite=cluster|sched|vi -gate BENCH_<suite>.json
//
// A bare -gate PATH without -suite keeps its historical meaning: the
// datapath suite. The pre-suite spellings (-datapath, -cluster,
// -cluster-gate, -sched, -sched-gate) remain as deprecated aliases.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"runtime/pprof"
	"strings"

	"inca/internal/bench"
	"inca/internal/trace"
)

func main() {
	var (
		exps       = flag.String("e", "all", "experiments to run: all or comma list of E1..E14")
		scaleStr   = flag.String("scale", "quick", "quick (reduced inputs, seconds) or full (paper-scale 480x640)")
		outPath    = flag.String("o", "", "also write results to this file")
		formatMD   = flag.Bool("md", false, "render tables as markdown")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the experiment run to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile (taken after the run) to this file")
		benchJSON  = flag.String("benchjson", "", "write all result tables as a JSON array to this file")
		traceOut   = flag.String("trace", "", "run the two-task preemption workload with tracing and write Perfetto JSON here (metrics beside it)")
		traceCap   = flag.Int("trace-cap", 0, "trace ring capacity in events (0 = default)")
		suite      = flag.String("suite", "", "benchmark suite: datapath, cluster, sched, or vi (use with -snapshot and/or -gate)")
		snapshot   = flag.String("snapshot", "", "run the selected -suite and write its schema-versioned snapshot here (e.g. BENCH_datapath.json)")
		gate       = flag.String("gate", "", "run the selected -suite (datapath when -suite is absent) and fail on regression vs this baseline snapshot")
		reps       = flag.Int("reps", 3, "wall-clock best-of repetitions for the datapath suite")
		datapath   = flag.String("datapath", "", "deprecated alias for -suite=datapath -snapshot PATH")
		clusterOut = flag.String("cluster", "", "deprecated alias for -suite=cluster -snapshot PATH")
		clusterGt  = flag.String("cluster-gate", "", "deprecated alias for -suite=cluster -gate PATH")
		schedOut   = flag.String("sched", "", "deprecated alias for -suite=sched -snapshot PATH")
		schedGt    = flag.String("sched-gate", "", "deprecated alias for -suite=sched -gate PATH")
	)
	flag.Parse()

	// Fold the pre-suite flag pairs into the (suite, snapshot, gate) triple.
	suiteName, snapPath, gatePath := *suite, *snapshot, *gate
	for _, alias := range []struct {
		val, suite string
		gate       bool
	}{
		{*datapath, "datapath", false},
		{*clusterOut, "cluster", false},
		{*clusterGt, "cluster", true},
		{*schedOut, "sched", false},
		{*schedGt, "sched", true},
	} {
		if alias.val == "" {
			continue
		}
		if suiteName != "" && suiteName != alias.suite {
			fatalf("conflicting suites: -suite=%s vs a -%s-style flag", suiteName, alias.suite)
		}
		suiteName = alias.suite
		if alias.gate {
			gatePath = alias.val
		} else {
			snapPath = alias.val
		}
	}
	if suiteName == "" && gatePath != "" {
		// Historical spelling: a bare -gate PATH means the datapath suite.
		suiteName = "datapath"
	}
	if suiteName != "" {
		switch suiteName {
		case "datapath":
			runDatapath(snapPath, gatePath, *reps, *formatMD)
		case "cluster":
			runClusterBench(snapPath, gatePath, *formatMD)
		case "sched":
			runSchedBench(snapPath, gatePath, *formatMD)
		case "vi":
			runVIBench(snapPath, gatePath, *formatMD)
		default:
			fatalf("unknown -suite %q (datapath|cluster|sched|vi)", suiteName)
		}
		return
	}
	if snapPath != "" {
		fatalf("-snapshot needs -suite (datapath|cluster|sched|vi)")
	}

	scale := bench.Quick
	switch *scaleStr {
	case "quick":
	case "full":
		scale = bench.Full
	default:
		fatalf("unknown -scale %q (quick|full)", *scaleStr)
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatalf("create %s: %v", *outPath, err)
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatalf("create %s: %v", *cpuProfile, err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("start cpu profile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}

	if *traceOut != "" {
		tr, t, err := bench.TraceRun(scale, *traceCap)
		if err != nil {
			fatalf("trace run: %v", err)
		}
		printTable(out, t, *formatMD)
		if err := trace.WriteFiles(tr, *traceOut, "inca-bench trace"); err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(out, "wrote %s (%d events, %d dropped) and %s\n",
			*traceOut, len(tr.Events()), tr.Dropped(), trace.MetricsPath(*traceOut))
		if *benchJSON != "" {
			f, jerr := os.Create(*benchJSON)
			if jerr != nil {
				fatalf("create %s: %v", *benchJSON, jerr)
			}
			if jerr := bench.WriteJSON(f, []*bench.Table{t}); jerr != nil {
				fatalf("write %s: %v", *benchJSON, jerr)
			}
			f.Close()
		}
		return
	}

	tables, err := run(*exps, scale)
	for _, t := range tables {
		printTable(out, t, *formatMD)
	}
	if *benchJSON != "" {
		f, jerr := os.Create(*benchJSON)
		if jerr != nil {
			fatalf("create %s: %v", *benchJSON, jerr)
		}
		if jerr := bench.WriteJSON(f, tables); jerr != nil {
			fatalf("write %s: %v", *benchJSON, jerr)
		}
		f.Close()
	}
	if *memProfile != "" {
		f, merr := os.Create(*memProfile)
		if merr != nil {
			fatalf("create %s: %v", *memProfile, merr)
		}
		runtime.GC()
		if merr := pprof.WriteHeapProfile(f); merr != nil {
			fatalf("write heap profile: %v", merr)
		}
		f.Close()
	}
	if err != nil {
		if *cpuProfile != "" {
			pprof.StopCPUProfile()
		}
		fatalf("%v", err)
	}
}

// run executes the requested experiments and returns every table produced,
// including the ones finished before an error (so partial results still
// reach -o/-benchjson).
func run(exps string, scale bench.Scale) ([]*bench.Table, error) {
	runners := map[string]func(bench.Scale) (*bench.Table, error){
		"E2":  bench.E2NetworkSweep,
		"E3":  bench.E3BackupVsConv,
		"E4":  bench.E4TheoryCheck,
		"E5":  bench.E5Resources,
		"E7":  bench.E7Headline,
		"E8":  bench.E8SaveGranularity,
		"E9":  bench.E9MultiCore,
		"E10": bench.E10Sensitivity,
		"E11": bench.E11Schedulability,
		"E12": bench.E12Energy,
		"E13": bench.E13Migration,
		"E14": bench.E14FaultRecovery,
	}

	var tables []*bench.Table
	if exps == "all" {
		all, err := bench.All(scale)
		tables = append(tables, all...)
		if err != nil {
			return tables, err
		}
		for _, id := range []string{"E8", "E9", "E10", "E11", "E12", "E13", "E14"} {
			t, err := runners[id](scale)
			if err != nil {
				return tables, fmt.Errorf("%s: %v", id, err)
			}
			tables = append(tables, t)
		}
		return tables, nil
	}

	for _, id := range strings.Split(exps, ",") {
		id = strings.TrimSpace(strings.ToUpper(id))
		switch id {
		case "E1":
			r, err := bench.E1InterruptPositions(scale)
			if err != nil {
				return tables, fmt.Errorf("E1: %v", err)
			}
			tables = append(tables, r.Table)
		case "E6":
			r, err := bench.E6DSLAMScheduling(scale)
			if err != nil {
				return tables, fmt.Errorf("E6: %v", err)
			}
			tables = append(tables, r.Table)
		default:
			f, ok := runners[id]
			if !ok {
				return tables, fmt.Errorf("unknown experiment %q", id)
			}
			t, err := f(scale)
			if err != nil {
				return tables, fmt.Errorf("%s: %v", id, err)
			}
			tables = append(tables, t)
		}
	}
	return tables, nil
}

// runDatapath handles -datapath (write a fresh snapshot) and -gate (compare
// against a checked-in baseline). INCA_BENCH_GATE=off skips the comparison,
// INCA_BENCH_GATE_TOL widens the allowed drop for noisy boxes.
func runDatapath(outPath, gatePath string, reps int, md bool) {
	if gatePath != "" && os.Getenv("INCA_BENCH_GATE") == "off" {
		fmt.Println("bench-gate: skipped (INCA_BENCH_GATE=off)")
		return
	}
	snap, t, err := bench.Datapath(reps)
	if err != nil {
		fatalf("datapath: %v", err)
	}
	snap.GitRev = gitRev()
	printTable(os.Stdout, t, md)
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			fatalf("create %s: %v", outPath, err)
		}
		if err := bench.WriteDatapath(f, snap); err != nil {
			fatalf("write %s: %v", outPath, err)
		}
		f.Close()
		fmt.Printf("wrote %s (schema v%d, rev %s)\n", outPath, snap.Schema, snap.GitRev)
	}
	if gatePath != "" {
		baseline, err := bench.ReadDatapath(gatePath)
		if err != nil {
			fatalf("gate baseline: %v", err)
		}
		tol := bench.GateTolerancePct()
		fails, notes := bench.Gate(baseline, snap, tol)
		for _, n := range notes {
			fmt.Printf("bench-gate: note: %s\n", n)
		}
		if len(fails) > 0 {
			for _, f := range fails {
				fmt.Fprintf(os.Stderr, "bench-gate: %s\n", f)
			}
			fatalf("modeled throughput regressed vs %s (baseline rev %s, tolerance %.1f%%)",
				gatePath, baseline.GitRev, tol)
		}
		fmt.Printf("bench-gate: ok vs %s (baseline rev %s, tolerance %.1f%%)\n",
			gatePath, baseline.GitRev, tol)
	}
}

// runClusterBench handles -cluster (write a fresh serving snapshot) and
// -cluster-gate (compare against the checked-in baseline). The sweep is
// fully deterministic (cycle model), so the same INCA_BENCH_GATE switch and
// tolerance knob apply.
func runClusterBench(outPath, gatePath string, md bool) {
	if gatePath != "" && os.Getenv("INCA_BENCH_GATE") == "off" {
		fmt.Println("cluster-gate: skipped (INCA_BENCH_GATE=off)")
		return
	}
	snap, t, err := bench.ClusterBench()
	if err != nil {
		fatalf("cluster: %v", err)
	}
	snap.GitRev = gitRev()
	printTable(os.Stdout, t, md)
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			fatalf("create %s: %v", outPath, err)
		}
		if err := bench.WriteCluster(f, snap); err != nil {
			fatalf("write %s: %v", outPath, err)
		}
		f.Close()
		fmt.Printf("wrote %s (schema v%d, rev %s)\n", outPath, snap.Schema, snap.GitRev)
	}
	if gatePath != "" {
		baseline, err := bench.ReadCluster(gatePath)
		if err != nil {
			fatalf("cluster-gate baseline: %v", err)
		}
		tol := bench.GateTolerancePct()
		fails, notes := bench.GateCluster(baseline, snap, tol)
		for _, n := range notes {
			fmt.Printf("cluster-gate: note: %s\n", n)
		}
		if len(fails) > 0 {
			for _, f := range fails {
				fmt.Fprintf(os.Stderr, "cluster-gate: %s\n", f)
			}
			fatalf("serving quality regressed vs %s (baseline rev %s, tolerance %.1f%%)",
				gatePath, baseline.GitRev, tol)
		}
		fmt.Printf("cluster-gate: ok vs %s (baseline rev %s, tolerance %.1f%%)\n",
			gatePath, baseline.GitRev, tol)
	}
}

// runSchedBench handles -sched (write a fresh scheduling snapshot) and
// -sched-gate (compare against the checked-in baseline). On top of the
// regression checks, the gate enforces that the predictive scenario never
// attains less SLA than the static-priority baseline it falls back to.
func runSchedBench(outPath, gatePath string, md bool) {
	if gatePath != "" && os.Getenv("INCA_BENCH_GATE") == "off" {
		fmt.Println("sched-gate: skipped (INCA_BENCH_GATE=off)")
		return
	}
	snap, t, err := bench.SchedBench()
	if err != nil {
		fatalf("sched: %v", err)
	}
	snap.GitRev = gitRev()
	printTable(os.Stdout, t, md)
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			fatalf("create %s: %v", outPath, err)
		}
		if err := bench.WriteSched(f, snap); err != nil {
			fatalf("write %s: %v", outPath, err)
		}
		f.Close()
		fmt.Printf("wrote %s (schema v%d, rev %s)\n", outPath, snap.Schema, snap.GitRev)
	}
	if gatePath != "" {
		baseline, err := bench.ReadSched(gatePath)
		if err != nil {
			fatalf("sched-gate baseline: %v", err)
		}
		tol := bench.GateTolerancePct()
		fails, notes := bench.GateSched(baseline, snap, tol)
		for _, n := range notes {
			fmt.Printf("sched-gate: note: %s\n", n)
		}
		if len(fails) > 0 {
			for _, f := range fails {
				fmt.Fprintf(os.Stderr, "sched-gate: %s\n", f)
			}
			fatalf("scheduling quality regressed vs %s (baseline rev %s, tolerance %.1f%%)",
				gatePath, baseline.GitRev, tol)
		}
		fmt.Printf("sched-gate: ok vs %s (baseline rev %s, tolerance %.1f%%)\n",
			gatePath, baseline.GitRev, tol)
	}
}

// runVIBench handles -suite=vi: snapshot (and/or gate) the interrupt-point
// placement sweep — footprint and proven-vs-measured response of the VIEvery
// and VIBudget streams on the DSLAM model set. On top of the regression
// checks the gate enforces, baseline-free, that no measured response exceeds
// its proven bound and that the optimizer genuinely pruned.
func runVIBench(outPath, gatePath string, md bool) {
	if gatePath != "" && os.Getenv("INCA_BENCH_GATE") == "off" {
		fmt.Println("vi-gate: skipped (INCA_BENCH_GATE=off)")
		return
	}
	snap, t, err := bench.VIBench()
	if err != nil {
		fatalf("vi: %v", err)
	}
	snap.GitRev = gitRev()
	printTable(os.Stdout, t, md)
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			fatalf("create %s: %v", outPath, err)
		}
		if err := bench.WriteVI(f, snap); err != nil {
			fatalf("write %s: %v", outPath, err)
		}
		f.Close()
		fmt.Printf("wrote %s (schema v%d, rev %s)\n", outPath, snap.Schema, snap.GitRev)
	}
	if gatePath != "" {
		baseline, err := bench.ReadVI(gatePath)
		if err != nil {
			fatalf("vi-gate baseline: %v", err)
		}
		tol := bench.GateTolerancePct()
		fails, notes := bench.GateVI(baseline, snap, tol)
		for _, n := range notes {
			fmt.Printf("vi-gate: note: %s\n", n)
		}
		if len(fails) > 0 {
			for _, f := range fails {
				fmt.Fprintf(os.Stderr, "vi-gate: %s\n", f)
			}
			fatalf("interrupt-point placement regressed vs %s (baseline rev %s, tolerance %.1f%%)",
				gatePath, baseline.GitRev, tol)
		}
		fmt.Printf("vi-gate: ok vs %s (baseline rev %s, tolerance %.1f%%)\n",
			gatePath, baseline.GitRev, tol)
	}
}

// gitRev best-effort resolves the working tree's short revision for the
// snapshot header; "unknown" outside a git checkout.
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "inca-bench: "+format+"\n", args...)
	os.Exit(1)
}

func printTable(w io.Writer, t *bench.Table, md bool) {
	if md {
		fmt.Fprintln(w, t.Markdown())
		return
	}
	fmt.Fprintln(w, t)
}
