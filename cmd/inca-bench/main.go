// inca-bench regenerates the paper's tables and figures on the simulated
// stack (see DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	inca-bench -e all -scale full
//	inca-bench -e E1,E3 -scale quick
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"inca/internal/bench"
)

func main() {
	var (
		exps     = flag.String("e", "all", "experiments to run: all or comma list of E1..E7")
		scaleStr = flag.String("scale", "quick", "quick (reduced inputs, seconds) or full (paper-scale 480x640)")
		outPath  = flag.String("o", "", "also write results to this file")
		formatMD = flag.Bool("md", false, "render tables as markdown")
	)
	flag.Parse()

	scale := bench.Quick
	switch *scaleStr {
	case "quick":
	case "full":
		scale = bench.Full
	default:
		fatalf("unknown -scale %q (quick|full)", *scaleStr)
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatalf("create %s: %v", *outPath, err)
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
	}

	runners := map[string]func(bench.Scale) (*bench.Table, error){
		"E2":  bench.E2NetworkSweep,
		"E3":  bench.E3BackupVsConv,
		"E4":  bench.E4TheoryCheck,
		"E5":  bench.E5Resources,
		"E7":  bench.E7Headline,
		"E8":  bench.E8SaveGranularity,
		"E9":  bench.E9MultiCore,
		"E10": bench.E10Sensitivity,
		"E11": bench.E11Schedulability,
		"E12": bench.E12Energy,
		"E13": bench.E13Migration,
	}

	if *exps == "all" {
		tables, err := bench.All(scale)
		for _, t := range tables {
			printTable(out, t, *formatMD)
		}
		if err != nil {
			fatalf("%v", err)
		}
		for _, id := range []string{"E8", "E9", "E10", "E11", "E12", "E13"} {
			t, err := runners[id](scale)
			if err != nil {
				fatalf("%s: %v", id, err)
			}
			printTable(out, t, *formatMD)
		}
		return
	}

	for _, id := range strings.Split(*exps, ",") {
		id = strings.TrimSpace(strings.ToUpper(id))
		switch id {
		case "E1":
			r, err := bench.E1InterruptPositions(scale)
			if err != nil {
				fatalf("E1: %v", err)
			}
			printTable(out, r.Table, *formatMD)
		case "E6":
			r, err := bench.E6DSLAMScheduling(scale)
			if err != nil {
				fatalf("E6: %v", err)
			}
			printTable(out, r.Table, *formatMD)
		default:
			f, ok := runners[id]
			if !ok {
				fatalf("unknown experiment %q", id)
			}
			t, err := f(scale)
			if err != nil {
				fatalf("%s: %v", id, err)
			}
			printTable(out, t, *formatMD)
		}
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "inca-bench: "+format+"\n", args...)
	os.Exit(1)
}

func printTable(w io.Writer, t *bench.Table, md bool) {
	if md {
		fmt.Fprintln(w, t.Markdown())
		return
	}
	fmt.Fprintln(w, t)
}
