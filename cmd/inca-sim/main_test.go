package main

import (
	"strings"
	"testing"
	"time"

	"inca/internal/accel"
	"inca/internal/iau"
)

func TestParsePolicy(t *testing.T) {
	cases := map[string]iau.Policy{
		"none": iau.PolicyNone, "vi": iau.PolicyVI, "virtual": iau.PolicyVI,
		"layer": iau.PolicyLayerByLayer, "cpu": iau.PolicyCPULike,
	}
	for in, want := range cases {
		got, err := parsePolicy(in)
		if err != nil || got != want {
			t.Errorf("parsePolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parsePolicy("bogus"); err == nil {
		t.Error("bogus policy accepted")
	}
}

func TestParseTask(t *testing.T) {
	cfg := accel.Big()
	spec, err := parseTask("name=FE,slot=0,net=tinycnn,c=3,h=24,w=32,period=50ms,deadline=40ms,drop=true", cfg, iau.PolicyVI, false)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "FE" || spec.Slot != 0 || spec.Period != 50*time.Millisecond ||
		spec.Deadline != 40*time.Millisecond || !spec.DropIfBusy {
		t.Fatalf("parsed %+v", spec)
	}
	if spec.Prog == nil {
		t.Fatal("no program compiled")
	}
	// Slot 0 under VI gets no virtual instructions.
	if n := len(spec.Prog.InterruptPoints()); n != 0 {
		t.Errorf("slot-0 program has %d interrupt points", n)
	}
	spec2, err := parseTask("name=PR,slot=1,net=tinycnn,c=3,h=24,w=32,continuous=true", cfg, iau.PolicyVI, false)
	if err != nil {
		t.Fatal(err)
	}
	if !spec2.Continuous || len(spec2.Prog.InterruptPoints()) == 0 {
		t.Fatalf("continuous interruptible task parsed wrong: %+v", spec2)
	}
	// With -predictive any slot can be a victim, so slot 0 gets virtual
	// interrupt points too.
	spec3, err := parseTask("name=FE,slot=0,net=tinycnn,c=3,h=24,w=32,period=50ms", cfg, iau.PolicyVI, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec3.Prog.InterruptPoints()) == 0 {
		t.Error("predictive slot-0 program has no interrupt points")
	}
}

func TestParseTaskErrors(t *testing.T) {
	cfg := accel.Big()
	cases := []string{
		"slot=0,net=tinycnn",           // missing name
		"name=x,slot=0",                // missing net/prog
		"name=x,slot=zero,net=tinycnn", // bad int
		"name=x,slot=0,net=doesnotexist",
		"name=x,slot=0,net=tinycnn,period=fast",
		"name=x,slot=0,net=tinycnn,nonsense=1",
		"justgarbage",
	}
	for _, c := range cases {
		if _, err := parseTask(c, cfg, iau.PolicyVI, false); err == nil {
			t.Errorf("%q accepted", c)
		}
	}
	if _, err := parseTask("name=x,slot=1,prog=/nonexistent.bin", cfg, iau.PolicyVI, false); err == nil ||
		!strings.Contains(err.Error(), "no such file") {
		t.Errorf("missing prog file: %v", err)
	}
}
