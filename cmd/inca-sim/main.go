// inca-sim runs a multi-task workload on the simulated interruptible
// accelerator and reports scheduling results: completions, deadline misses,
// response latencies, preemptions, and the interrupt-support overhead.
//
// Tasks are described as flag values, one per -task:
//
//	-task name=FE,slot=0,net=superpoint,h=360,w=480,c=1,period=50ms,deadline=50ms
//	-task name=PR,slot=1,net=gem,h=480,w=640,continuous=true
//
// A compiled instruction.bin can be supplied instead of a network:
//
//	-task name=PR,slot=1,prog=pr.bin,continuous=true
//
// Two keys expose the compiler's interrupt-point placement optimizer:
// vibudget=<duration> compiles the task's own stream with the minimal
// Vir_SAVE site set proving that worst-case preemption response (instead of
// a group at every site), and maxresponse=<duration> declares how long this
// task tolerates waiting on lower-priority work — sched.Run rejects the set
// up front if any co-scheduled program's proven bound exceeds it.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"inca/internal/accel"
	"inca/internal/compiler"
	"inca/internal/fault"
	"inca/internal/iau"
	"inca/internal/isa"
	"inca/internal/model"
	"inca/internal/quant"
	"inca/internal/sched"
	"inca/internal/trace"
)

type taskFlags []string

func (t *taskFlags) String() string     { return strings.Join(*t, "; ") }
func (t *taskFlags) Set(s string) error { *t = append(*t, s); return nil }

func main() {
	var tasks taskFlags
	var (
		accelStr = flag.String("accel", "big", "accelerator config: big or small")
		policy   = flag.String("policy", "vi", "interrupt policy: none|vi|layer|cpu")
		duration = flag.Duration("duration", 5*time.Second, "simulated horizon")
		verbose  = flag.Bool("v", false, "print every preemption record")
		timeline = flag.Bool("timeline", false, "print the execution timeline (start/preempt/resume/complete)")
		gantt    = flag.Bool("gantt", false, "render the timeline as a per-slot Gantt chart")
		traceOut = flag.String("trace", "", "write a Perfetto (Chrome trace_event) JSON trace to this file")
		traceCap = flag.Int("trace-cap", 0, "trace ring capacity in events (0 = default)")

		predictive = flag.Bool("predictive", false, "use the PREMA-style predictive scheduler (DESIGN.md §15) on top of the interrupt mechanism")
		predCold   = flag.Bool("predictive-cold", false, "start the predictive estimator cold (static fallback until the first completions train it)")

		faults      = flag.Bool("faults", false, "arm the deterministic fault injector")
		faultSeed   = flag.Uint64("fault-seed", 7, "fault injector seed")
		corruptRate = flag.Float64("corrupt-rate", 0.02, "snapshot/backup bit-flip rate (with -faults)")
		stallRate   = flag.Float64("stall-rate", 0.02, "per-instruction stall rate (with -faults)")
		hangRate    = flag.Float64("hang-rate", 1e-5, "per-instruction hang rate (with -faults)")
		irqLostRate = flag.Float64("irq-lost-rate", 0.01, "lost preemption IRQ rate (with -faults)")
		watchdog    = flag.Uint64("watchdog", 0, "watchdog bound in cycles (0 = auto-derive, with -faults)")
	)
	flag.Var(&tasks, "task", "task spec (repeatable); see doc comment")
	flag.Parse()

	if len(tasks) == 0 {
		// Default: the paper's DSLAM mix.
		tasks = taskFlags{
			"name=FE,slot=0,net=superpoint,c=1,h=360,w=480,period=50ms,deadline=50ms,drop=true",
			"name=PR,slot=1,net=gem,c=3,h=480,w=640,continuous=true",
		}
		fmt.Println("no -task flags; running the default DSLAM mix (FE@20fps + continuous PR)")
	}

	cfg := accel.Big()
	if *accelStr == "small" {
		cfg = accel.Small()
	} else if *accelStr != "big" {
		fatalf("unknown -accel %q", *accelStr)
	}
	pol, err := parsePolicy(*policy)
	if err != nil {
		fatalf("%v", err)
	}

	var specs []sched.TaskSpec
	for _, ts := range tasks {
		spec, err := parseTask(ts, cfg, pol, *predictive)
		if err != nil {
			fatalf("parsing -task %q: %v", ts, err)
		}
		specs = append(specs, spec)
	}

	var opts []sched.Option
	if *timeline || *gantt {
		opts = append(opts, sched.WithTimeline())
	}
	var tracer *trace.Tracer
	if *traceOut != "" {
		tracer = trace.New(*traceCap)
		opts = append(opts, sched.WithTracer(tracer))
	}
	var pred *sched.PolicyPredictive
	if *predictive {
		var po []sched.PredictOption
		if tracer != nil {
			po = append(po, sched.WithDecisionTrace(tracer))
		}
		pred = sched.NewPredictive(cfg, po...)
		opts = append(opts, sched.WithPredictive(pred))
		if *predCold {
			opts = append(opts, sched.WithPredictiveCold())
		}
	} else if *predCold {
		fatalf("-predictive-cold requires -predictive")
	}
	if *faults {
		inj := fault.New(*faultSeed)
		inj.SetRate(fault.SiteBackup, *corruptRate)
		inj.SetRate(fault.SiteStall, *stallRate)
		inj.SetRate(fault.SiteHang, *hangRate)
		inj.SetRate(fault.SiteIRQLost, *irqLostRate)
		opts = append(opts, sched.WithFaults(inj), sched.WithWatchdog(*watchdog))
	}
	res, err := sched.Run(cfg, pol, specs, *duration, opts...)
	if err != nil {
		fatalf("run: %v", err)
	}
	if tracer != nil {
		if err := trace.WriteFiles(tracer, *traceOut, "inca-sim "+pol.String()); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("wrote Perfetto trace to %s (%d events, %d dropped) and metrics to %s\n",
			*traceOut, tracer.Total(), tracer.Dropped(), trace.MetricsPath(*traceOut))
	}

	fmt.Printf("policy=%v accel=%s horizon=%v utilization=%.1f%% degradation=%.3f%%\n",
		pol, cfg.Name, *duration, 100*res.Utilization(), 100*res.Degradation())
	if pred != nil {
		decisions, estimates := pred.Counters()
		fmt.Printf("predictive: %d cost-model decisions, %d estimator updates, mean SLA %.1f%%, Jain fairness %.3f\n",
			decisions, estimates, 100*res.MeanSLAAttainment(), res.JainFairness())
	}
	calc, xfer, hidden := res.CycleStats()
	if tot := calc + xfer; tot > 0 {
		fmt.Printf("accelerator time: %.0f%% compute, %.0f%% exposed transfers (%.1f ms of DMA hidden under compute)\n\n",
			100*float64(calc)/float64(tot), 100*float64(xfer)/float64(tot), cfg.CyclesToMicros(hidden)/1000)
	} else {
		fmt.Println()
	}
	fmt.Printf("%-10s %5s %5s %5s %6s %12s %12s %9s\n",
		"task", "done", "drop", "miss", "preempt", "mean(ms)", "max(ms)", "busy(ms)")
	for _, spec := range specs {
		st := res.Tasks[spec.Name]
		fmt.Printf("%-10s %5d %5d %5d %6d %12.2f %12.2f %9.1f\n",
			st.Name, st.Completed, st.Dropped, st.DeadlineMisses, st.Preempted,
			cfg.CyclesToMicros(uint64(st.MeanLatency()))/1000,
			cfg.CyclesToMicros(st.MaxLatency())/1000,
			cfg.CyclesToMicros(st.ExecCycles)/1000)
	}
	if res.Faults != nil {
		fmt.Printf("\n%s\n", res.Faults)
		fmt.Printf("%-10s %7s %9s %9s %5s\n", "task", "retried", "corrupted", "recovered", "shed")
		for _, spec := range specs {
			st := res.Tasks[spec.Name]
			fmt.Printf("%-10s %7d %9d %9d %5d\n", st.Name, st.Retried, st.Corrupted, st.Recovered, st.Shed)
		}
	}
	fmt.Printf("\n%d preemptions", len(res.Preemptions))
	if len(res.Preemptions) > 0 {
		var lat, cost uint64
		for _, p := range res.Preemptions {
			lat += p.Latency()
			cost += p.Cost()
		}
		n := uint64(len(res.Preemptions))
		fmt.Printf(": mean response latency %.1f us, mean extra cost %.1f us",
			cfg.CyclesToMicros(lat/n), cfg.CyclesToMicros(cost/n))
	}
	fmt.Println()
	if *verbose {
		for i, p := range res.Preemptions {
			fmt.Printf("  #%d t=%.3fms slot%d->slot%d layer=%s latency=%.1fus cost=%.1fus backup=%dB\n",
				i, cfg.CyclesToMicros(p.RequestCycle)/1000, p.Preemptor, p.Victim, p.VictimLayer,
				cfg.CyclesToMicros(p.Latency()), cfg.CyclesToMicros(p.Cost()), p.BackupBytes)
		}
	}
	if *gantt {
		fmt.Println("\ntimeline (each column ≈ " +
			fmt.Sprintf("%.1f ms", float64(duration.Milliseconds())/72) + "):")
		fmt.Print(sched.Gantt(cfg, res.Timeline, cfg.SecondsToCycles(duration.Seconds()), 72))
	}
	if *timeline {
		fmt.Println("\ntimeline:")
		for _, e := range res.Timeline {
			fmt.Printf("  t=%10.3fms %-8s slot%d %s\n",
				cfg.CyclesToMicros(e.Cycle)/1000, e.Kind, e.Slot, e.Label)
		}
	}
}

func parsePolicy(s string) (iau.Policy, error) {
	switch s {
	case "none":
		return iau.PolicyNone, nil
	case "vi", "virtual", "virtual-instruction":
		return iau.PolicyVI, nil
	case "layer", "layer-by-layer":
		return iau.PolicyLayerByLayer, nil
	case "cpu", "cpu-like":
		return iau.PolicyCPULike, nil
	default:
		return 0, fmt.Errorf("unknown policy %q (none|vi|layer|cpu)", s)
	}
}

func parseTask(s string, cfg accel.Config, pol iau.Policy, predictive bool) (sched.TaskSpec, error) {
	spec := sched.TaskSpec{}
	netName, progPath := "", ""
	var viBudget time.Duration
	c, h, w := 3, 120, 160
	for _, kv := range strings.Split(s, ",") {
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 {
			return spec, fmt.Errorf("bad key=value %q", kv)
		}
		k, v := parts[0], parts[1]
		var err error
		switch k {
		case "name":
			spec.Name = v
		case "slot":
			spec.Slot, err = strconv.Atoi(v)
		case "net":
			netName = v
		case "prog":
			progPath = v
		case "c":
			c, err = strconv.Atoi(v)
		case "h":
			h, err = strconv.Atoi(v)
		case "w":
			w, err = strconv.Atoi(v)
		case "period":
			spec.Period, err = time.ParseDuration(v)
		case "deadline":
			spec.Deadline, err = time.ParseDuration(v)
		case "offset":
			spec.Offset, err = time.ParseDuration(v)
		case "count":
			spec.Count, err = strconv.Atoi(v)
		case "continuous":
			spec.Continuous, err = strconv.ParseBool(v)
		case "drop":
			spec.DropIfBusy, err = strconv.ParseBool(v)
		case "retries":
			spec.MaxRetries, err = strconv.Atoi(v)
		case "backoff":
			spec.RetryBackoff, err = time.ParseDuration(v)
		case "maxresponse":
			spec.MaxResponse, err = time.ParseDuration(v)
		case "vibudget":
			viBudget, err = time.ParseDuration(v)
		default:
			return spec, fmt.Errorf("unknown key %q", k)
		}
		if err != nil {
			return spec, fmt.Errorf("key %q: %v", k, err)
		}
	}
	if spec.Name == "" {
		return spec, fmt.Errorf("missing name=")
	}
	switch {
	case progPath != "":
		if viBudget > 0 {
			return spec, fmt.Errorf("vibudget= needs net= (a pre-compiled prog= already fixed its placement)")
		}
		f, err := os.Open(progPath)
		if err != nil {
			return spec, err
		}
		defer f.Close()
		p, err := isa.Decode(f)
		if err != nil {
			return spec, fmt.Errorf("decoding %s: %v", progPath, err)
		}
		if p.ParaIn != cfg.ParaIn || p.ParaOut != cfg.ParaOut || p.ParaHeight != cfg.ParaHeight {
			return spec, fmt.Errorf("%s compiled for Para=(%d,%d,%d), accelerator is (%d,%d,%d)",
				progPath, p.ParaIn, p.ParaOut, p.ParaHeight, cfg.ParaIn, cfg.ParaOut, cfg.ParaHeight)
		}
		spec.Prog = p
	case netName != "":
		g, err := model.ByName(netName, c, h, w)
		if err != nil {
			return spec, err
		}
		q, err := quant.Synthesize(g, 1)
		if err != nil {
			return spec, err
		}
		opt := cfg.CompilerOptions()
		// Under the static rule only lower-priority slots are ever
		// preempted; the predictive scheduler can pick any victim, so
		// every task gets virtual interrupt points. A vibudget= key hands
		// placement to the optimizer instead of the every-site rule.
		opt.VI = compiler.VIIf(pol == iau.PolicyVI && (spec.Slot > 0 || predictive))
		if viBudget > 0 {
			if pol != iau.PolicyVI {
				return spec, fmt.Errorf("vibudget= needs -policy vi")
			}
			opt.VI = compiler.VIBudget{MaxResponseCycles: cfg.SecondsToCycles(viBudget.Seconds())}
		}
		spec.Prog, err = compiler.Compile(q, opt)
		if err != nil {
			return spec, err
		}
	default:
		return spec, fmt.Errorf("need net= or prog=")
	}
	return spec, nil
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "inca-sim: "+format+"\n", args...)
	os.Exit(1)
}
