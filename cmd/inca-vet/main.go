// inca-vet statically verifies compiled instruction streams: it decodes
// each image (v2 and v3 codecs) and runs the internal/progcheck abstract
// interpreter over it — DDR bounds and declared layout, restore-group
// structure, interrupt-point legality, Vir_SAVE reservations, a resume
// replay from every park point, and an independent re-derivation of the
// embedded worst-case response bound. No engine runs; a stream that
// passes is safe to hand to an IAU or a cluster.
//
// Usage:
//
//	inca-vet [-accel big|small|serving] stream.bin...
//	inca-vet -models dslam
//
// With -models dslam no files are read: the paper's DSLAM task set
// (SuperPoint FE/MAP, ResNet-18 LOOP) is compiled in memory under both
// the every-site and budgeted placements and verified — a self-test of
// the whole compile-verify contract on realistic networks.
//
// Exit status 0 when every stream verifies, 1 otherwise.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"inca/internal/accel"
	"inca/internal/compiler"
	"inca/internal/isa"
	"inca/internal/model"
	"inca/internal/progcheck"
	"inca/internal/quant"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("inca-vet", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		accelStr = fs.String("accel", "big", "cost model for the bound re-derivation: big|small|serving")
		noBound  = fs.Bool("no-bound", false, "skip the response-bound re-derivation (structural checks only)")
		verbose  = fs.Bool("v", false, "print per-stream statistics even on success")
		models   = fs.String("models", "", "verify a built-in compiled model set instead of files (dslam)")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}

	var cfg accel.Config
	switch *accelStr {
	case "big":
		cfg = accel.Big()
	case "small":
		cfg = accel.Small()
	case "serving":
		cfg = accel.Serving()
	default:
		fmt.Fprintf(errw, "inca-vet: unknown -accel %q (want big, small, or serving)\n", *accelStr)
		return 1
	}

	var progs []*isa.Program
	switch {
	case *models == "dslam":
		var err error
		progs, err = dslamSet(cfg)
		if err != nil {
			fmt.Fprintf(errw, "inca-vet: building dslam set: %v\n", err)
			return 1
		}
	case *models != "":
		fmt.Fprintf(errw, "inca-vet: unknown -models %q (want dslam)\n", *models)
		return 1
	case fs.NArg() == 0:
		fmt.Fprintln(errw, "inca-vet: no streams given (pass .bin files or -models dslam)")
		fs.Usage()
		return 1
	default:
		for _, path := range fs.Args() {
			f, err := os.Open(path)
			if err != nil {
				fmt.Fprintf(errw, "inca-vet: %v\n", err)
				return 1
			}
			p, err := isa.Decode(f)
			f.Close()
			if err != nil {
				fmt.Fprintf(errw, "inca-vet: decoding %s: %v\n", path, err)
				return 1
			}
			progs = append(progs, p)
		}
	}

	opt := progcheck.Options{}
	if !*noBound {
		opt.Cost = cfg
	}
	failed := 0
	for _, p := range progs {
		rep := progcheck.Verify(p, opt)
		if !rep.OK() {
			failed++
			fmt.Fprintf(out, "FAIL %s: %d finding(s)\n", p.Name, len(rep.Diags))
			for _, d := range rep.Diags {
				fmt.Fprintf(out, "  %v\n", d)
			}
			if rep.Truncated {
				fmt.Fprintln(out, "  ... further findings truncated")
			}
			continue
		}
		if *verbose {
			bound := "bound unmodeled"
			if rep.BoundChecked {
				bound = fmt.Sprintf("bound %d cycles re-derived exactly", rep.RederivedBound)
			}
			sampled := ""
			if rep.SampledResumes {
				sampled = " (sampled)"
			}
			fmt.Fprintf(out, "ok   %s: %d instrs, %d interrupt points, %d resume replays%s, %s\n",
				p.Name, rep.Instrs, rep.Points, rep.CheckedResumes, sampled, bound)
		} else {
			fmt.Fprintf(out, "ok   %s\n", p.Name)
		}
	}
	if failed > 0 {
		fmt.Fprintf(out, "inca-vet: %d of %d streams failed verification\n", failed, len(progs))
		return 1
	}
	return 0
}

// dslamSet compiles the paper's DSLAM-style task mix (the same networks
// the scheduler benchmark replays) under both placement policies.
func dslamSet(cfg accel.Config) ([]*isa.Program, error) {
	nets := []struct {
		name string
		g    *model.Network
	}{
		{"FE", model.NewSuperPoint(60, 80)},
		{"MAP", model.NewSuperPoint(90, 120)},
	}
	loop, err := model.NewResNet(18, 3, 60, 80)
	if err != nil {
		return nil, err
	}
	nets = append(nets, struct {
		name string
		g    *model.Network
	}{"LOOP", loop})

	var progs []*isa.Program
	for _, n := range nets {
		q, err := quant.Synthesize(n.g, 21)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", n.name, err)
		}
		opt := cfg.CompilerOptions()
		opt.VI = compiler.VIEvery{}
		every, err := compiler.Compile(q, opt)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", n.name, err)
		}
		every.Name = n.name + "/vi-every"
		progs = append(progs, every)

		opt.VI = compiler.VIBudget{MaxResponseCycles: every.ResponseBound * 4}
		budget, err := compiler.Compile(q, opt)
		if err != nil {
			return nil, fmt.Errorf("%s budgeted: %v", n.name, err)
		}
		budget.Name = n.name + "/vi-budget"
		progs = append(progs, budget)
	}
	return progs, nil
}
