package main

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"inca/internal/accel"
	"inca/internal/compiler"
	"inca/internal/isa"
	"inca/internal/model"
	"inca/internal/quant"
)

func compileTiny(t *testing.T) (*isa.Program, accel.Config) {
	t.Helper()
	cfg := accel.Small()
	g := model.NewTinyCNN(3, 24, 32)
	q, err := quant.Synthesize(g, 11)
	if err != nil {
		t.Fatal(err)
	}
	opt := cfg.CompilerOptions()
	opt.VI = compiler.VIEvery{}
	p, err := compiler.Compile(q, opt)
	if err != nil {
		t.Fatal(err)
	}
	return p, cfg
}

func writeStream(t *testing.T, p *isa.Program) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "stream.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := isa.Encode(f, p); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestVetAcceptsCleanStream(t *testing.T) {
	p, _ := compileTiny(t)
	path := writeStream(t, p)
	var out, errw bytes.Buffer
	if code := run([]string{"-accel", "small", "-v", path}, &out, &errw); code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "re-derived exactly") {
		t.Fatalf("verbose output missing bound confirmation:\n%s", out.String())
	}
}

func TestVetRejectsForgedBound(t *testing.T) {
	p, _ := compileTiny(t)
	p.ResponseBound += 12345
	path := writeStream(t, p)
	var out, errw bytes.Buffer
	if code := run([]string{"-accel", "small", path}, &out, &errw); code != 1 {
		t.Fatalf("exit %d for a forged bound\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "response-bound") {
		t.Fatalf("failure output missing the response-bound class:\n%s", out.String())
	}
}

func TestVetRejectsCorruptTransfer(t *testing.T) {
	p, _ := compileTiny(t)
	for i := range p.Instrs {
		if p.Instrs[i].Op == isa.OpLoadD && p.Instrs[i].Rows > 0 {
			p.Instrs[i].Addr = p.DDRBytes
			break
		}
	}
	path := writeStream(t, p)
	var out, errw bytes.Buffer
	if code := run([]string{"-accel", "small", path}, &out, &errw); code != 1 {
		t.Fatalf("exit %d for an out-of-arena load\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "ddr-bounds") {
		t.Fatalf("failure output missing the ddr-bounds class:\n%s", out.String())
	}
}

// spliceV2 rewrites a v3 image into the v2 layout: version stamp 2 and no
// response-bound field (v2 predates the proven bound).
func spliceV2(t *testing.T, path string) string {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint16(raw[4:6], 2)
	nameLen := int(binary.LittleEndian.Uint16(raw[16:18]))
	off := 4 + 14 + nameLen + 36 // magic + header + name + counts
	raw = append(raw[:off:off], raw[off+8:]...)
	out := filepath.Join(t.TempDir(), "v2.bin")
	if err := os.WriteFile(out, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestVetV2Stream: a v2 (bound-less) image still decodes and verifies; the
// bound check is skipped, not failed, for an unmodeled stream.
func TestVetV2Stream(t *testing.T) {
	p, _ := compileTiny(t)
	path := spliceV2(t, writeStream(t, p))
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	back, err := isa.Decode(f)
	f.Close()
	if err != nil {
		t.Fatalf("v2 decode: %v", err)
	}
	if back.ResponseBound != 0 {
		t.Fatalf("v2 stream decoded with bound %d, want 0", back.ResponseBound)
	}
	var out, errw bytes.Buffer
	if code := run([]string{"-accel", "small", "-v", path}, &out, &errw); code != 0 {
		t.Fatalf("exit %d\n%s%s", code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "bound unmodeled") {
		t.Fatalf("v2 stream should report an unmodeled bound:\n%s", out.String())
	}
}

// TestVetDslamSet: the built-in model set — the paper's DSLAM task mix
// under both placement policies — compiles and verifies end to end, the
// self-test `make progcheck` runs from the command line.
func TestVetDslamSet(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the full DSLAM model set")
	}
	var out, errw bytes.Buffer
	if code := run([]string{"-accel", "big", "-v", "-models", "dslam"}, &out, &errw); code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errw.String())
	}
	for _, stream := range []string{"FE/vi-every", "FE/vi-budget", "MAP/vi-every", "MAP/vi-budget", "LOOP/vi-every", "LOOP/vi-budget"} {
		if !strings.Contains(out.String(), "ok   "+stream) {
			t.Errorf("dslam output missing %q:\n%s", stream, out.String())
		}
	}
	if strings.Count(out.String(), "re-derived exactly") != 6 {
		t.Errorf("want 6 exact bound re-derivations:\n%s", out.String())
	}
}

func TestVetUsageErrors(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run(nil, &out, &errw); code != 1 {
		t.Fatalf("no-args exit %d", code)
	}
	if code := run([]string{"-accel", "bogus"}, &out, &errw); code != 1 {
		t.Fatalf("bad accel exit %d", code)
	}
	if code := run([]string{"-models", "bogus"}, &out, &errw); code != 1 {
		t.Fatalf("bad models exit %d", code)
	}
}
