// Command inca-lint is the repository's multichecker: it runs the custom
// static-analysis suite (determinism, traceguard, clockowner, pairing,
// nodeprecated) over every package in the module and prints findings in a
// deterministic file:line order.
//
// Usage:
//
//	inca-lint [-dir .] [-only determinism,pairing] [-report]
//
// Exit status is 1 when findings exist, unless -report is set (report mode
// prints the same findings but always exits 0 — the `make lint-report` hook
// for surveying violations without failing the build).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"inca/internal/lint"
)

func main() {
	dir := flag.String("dir", ".", "module root to lint (directory containing go.mod)")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	report := flag.Bool("report", false, "print findings but exit 0 (survey mode)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: inca-lint [flags]\n\nanalyzers:\n")
		for _, sa := range lint.Suite {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", sa.Name, sa.Doc)
		}
		fmt.Fprintf(flag.CommandLine.Output(), "\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	var filter map[string]bool
	if *only != "" {
		filter = make(map[string]bool)
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			known := false
			for _, sa := range lint.Suite {
				if sa.Name == name {
					known = true
					break
				}
			}
			if !known {
				fmt.Fprintf(os.Stderr, "inca-lint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			filter[name] = true
		}
	}

	diags, err := lint.RunSuite(*dir, filter)
	if err != nil {
		fmt.Fprintf(os.Stderr, "inca-lint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "inca-lint: %d finding(s)\n", len(diags))
		if !*report {
			os.Exit(1)
		}
	}
}
