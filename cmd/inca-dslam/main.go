// inca-dslam runs the full two-agent DSLAM co-simulation (§5.3 of the
// paper): each agent owns one simulated interruptible accelerator running
// SuperPoint-style FE at top priority and GeM-style PR continuously, with
// the CPU-side SLAM stack (VO, retrieval, map merging) on the deterministic
// ROS middleware.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"inca/internal/iau"
	"inca/internal/slam"
	"inca/internal/trace"
	"inca/internal/world"
)

func main() {
	var (
		duration = flag.Duration("duration", 30*time.Second, "simulated mission time")
		fps      = flag.Int("fps", 20, "camera frame rate")
		camW     = flag.Int("cam-w", 128, "camera width (use 640 for paper scale)")
		camH     = flag.Int("cam-h", 96, "camera height (use 480 for paper scale)")
		policy   = flag.String("policy", "vi", "interrupt policy: none|vi|layer|cpu")
		seed     = flag.Uint64("seed", 42, "world and noise seed")
		verbose  = flag.Bool("v", false, "print every accepted PR match")
		showMap  = flag.Bool("map", false, "render the arena and trajectories as ASCII")
		frames   = flag.String("frames", "", "write sample rendered camera frames (PNG) to this directory")
		traceOut = flag.String("trace", "", "write per-agent Perfetto traces to <prefix>.agentN.json (metrics beside each)")
		traceCap = flag.Int("trace-cap", 0, "trace ring capacity in events (0 = default)")

		chaos       = flag.Bool("chaos", false, "run under deterministic fault injection with the recovery stack armed")
		chaosSeed   = flag.Uint64("chaos-seed", 7, "fault injector seed")
		corruptRate = flag.Float64("corrupt-rate", 0.02, "snapshot/backup bit-flip rate (with -chaos)")
		stallRate   = flag.Float64("stall-rate", 0.02, "per-instruction stall rate (with -chaos)")
		hangRate    = flag.Float64("hang-rate", 1e-5, "per-instruction hang rate (with -chaos)")
		irqLostRate = flag.Float64("irq-lost-rate", 0.01, "lost preemption IRQ rate (with -chaos)")
		msgDropRate = flag.Float64("msg-drop-rate", 0.002, "ROS delivery drop rate (with -chaos)")
		maxRetries  = flag.Int("max-retries", 3, "resubmissions of a watchdog-killed inference (with -chaos)")
	)
	flag.Parse()

	cfg := slam.DefaultDSLAMConfig()
	cfg.Duration = *duration
	cfg.FPS = *fps
	cfg.CameraW, cfg.CameraH = *camW, *camH
	cfg.Seed = *seed
	if *traceOut != "" {
		cfg.TraceCapacity = *traceCap
		if cfg.TraceCapacity == 0 {
			cfg.TraceCapacity = -1 // default ring size
		}
	}
	if *chaos {
		ch := slam.DefaultChaosConfig()
		ch.Seed = *chaosSeed
		ch.CorruptRate = *corruptRate
		ch.StallRate = *stallRate
		ch.HangRate = *hangRate
		ch.IRQLostRate = *irqLostRate
		ch.MsgDropRate = *msgDropRate
		ch.MaxRetries = *maxRetries
		cfg.Chaos = ch
	}
	switch *policy {
	case "vi":
		cfg.Policy = iau.PolicyVI
	case "none":
		cfg.Policy = iau.PolicyNone
	case "layer":
		cfg.Policy = iau.PolicyLayerByLayer
	case "cpu":
		cfg.Policy = iau.PolicyCPULike
	default:
		fmt.Fprintf(os.Stderr, "inca-dslam: unknown policy %q\n", *policy)
		os.Exit(1)
	}

	fmt.Printf("DSLAM: %v @ %d fps, camera %dx%d, policy %v, seed %d\n",
		*duration, *fps, *camW, *camH, cfg.Policy, *seed)
	res, err := slam.RunDSLAM(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "inca-dslam: %v\n", err)
		os.Exit(1)
	}

	for i, a := range res.Agents {
		fmt.Printf("\nagent %d:\n", i)
		fmt.Printf("  camera frames     %d (FE done %d, dropped %d, deadline misses %d)\n",
			a.Frames, a.FEDone, a.FEDropped, a.FEMisses)
		fmt.Printf("  FE latency        mean %v, max %v\n", a.FEMeanLat.Round(time.Microsecond), a.FEMaxLat.Round(time.Microsecond))
		fmt.Printf("  VO                tracked %d, lost %d, end drift %.2f m\n", a.VOTracked, a.VOLost, a.DriftEnd)
		fmt.Printf("  PR                %d inferences (1 per %.1f frames), preempted %d times\n",
			a.PRDone, a.PRMeanGapFrames, a.Preempts)
		fmt.Printf("  accelerator       utilization %.0f%%, interrupt overhead %.3f%%\n",
			100*a.Utilization, 100*a.Degradation)
		if *chaos {
			fmt.Printf("  recovery          %d corrupt restores detected, %d stalls, %d lost IRQs\n",
				a.CorruptedRestores, a.Stalls, a.LostIRQs)
			fmt.Printf("                    %d watchdog kills -> %d retried, %d shed\n",
				a.WatchdogKills, a.Retries, a.Shed)
		}
	}
	if *chaos {
		fmt.Printf("\n%s\n", res.Injected)
		fmt.Printf("ros transport: %d dropped, %d delayed, %d duplicated\n",
			res.MsgFaults.Dropped, res.MsgFaults.Delayed, res.MsgFaults.Duplicated)
	}

	if *traceOut != "" {
		for i, tr := range res.Tracers {
			if tr == nil {
				continue
			}
			path := fmt.Sprintf("%s.agent%d.json", *traceOut, i)
			if err := trace.WriteFiles(tr, path, fmt.Sprintf("inca-dslam agent %d", i)); err != nil {
				fmt.Fprintf(os.Stderr, "inca-dslam: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("\nagent %d trace: %s (%d events, %d dropped), metrics %s\n",
				i, path, len(tr.Events()), tr.Dropped(), trace.MetricsPath(path))
		}
	}

	fmt.Printf("\nplace recognition: %d accepted cross-agent matches\n", len(res.Matches))
	if res.Merged() {
		first := res.Matches[0]
		fmt.Printf("maps merged at t=%v (similarity %.3f, %d feature matches)\n",
			res.FirstMergeTime.Round(time.Millisecond), first.Similarity, first.Matches)
		fmt.Printf("merge transform error: %.2f m / %.3f rad vs ground truth\n", first.ErrTrans, first.ErrRot)
		if !math.IsNaN(res.MergedError) {
			fmt.Printf("merged-map trajectory error: %.2f m (first match), %.2f m (refined over %d matches)\n",
				res.MergedError, res.RefinedError, len(res.Matches))
		}
		if *verbose {
			for i, m := range res.Matches {
				fmt.Printf("  match %3d t=%v sim=%.3f support=%d errT=%.2fm errR=%.3f\n",
					i, m.Stamp.Round(time.Millisecond), m.Similarity, m.Matches, m.ErrTrans, m.ErrRot)
			}
		}
	} else {
		fmt.Println("maps were not merged within the mission time")
	}

	if *frames != "" {
		w := world.NewArena(*seed)
		a0, _ := world.TwoAgentPatrol(w)
		cam := world.DefaultCamera(*camW, *camH)
		n := 0
		for i := 0; i < 5; i++ {
			ts := time.Duration(i*4) * time.Second
			obs := cam.Observe(w, 0, a0.PoseAt(ts), ts, *seed^0xCA11)
			path := fmt.Sprintf("%s/agent0_t%02ds.png", *frames, i*4)
			if err := world.WritePNG(cam.Render(obs), path); err != nil {
				fmt.Fprintf(os.Stderr, "inca-dslam: writing %s: %v\n", path, err)
				break
			}
			n++
		}
		fmt.Printf("\nwrote %d camera frames to %s\n", n, *frames)
	}

	if *showMap {
		w := world.NewArena(*seed)
		m := world.NewAsciiMap(w, 72, 24)
		for agent := 0; agent < 2; agent++ {
			mark := rune('a' + agent)
			var poses []world.Pose
			for _, kf := range res.KeyFrames(agent) {
				poses = append(poses, kf.True)
			}
			m.Track(poses, mark)
		}
		if res.Merged() {
			// Agent 1's odometry projected through the refined transform
			// into agent 0's frame (and on into world coordinates through
			// agent 0's last keyframe).
			m0 := res.Matches[0]
			aKeys := res.KeyFrames(m0.AgentA)
			if len(aKeys) > 0 {
				ka := aKeys[len(aKeys)-1]
				tWA := ka.True.Compose(ka.Odom.Inverse())
				var est []world.Pose
				for _, kb := range res.KeyFrames(m0.AgentB) {
					est = append(est, tWA.Compose(res.RefinedTAB).Compose(kb.Odom))
				}
				m.Track(est, '+')
			}
		}
		fmt.Printf("\narena (a/b = true trajectories, + = merged estimate of b in a's map, O = pillars):\n%s", m)
	}
}
