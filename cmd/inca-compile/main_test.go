package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"inca/internal/isa"
)

func runCompile(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errw bytes.Buffer
	code := run(args, &out, &errw)
	return code, out.String(), errw.String()
}

// TestCompileCheckRoundTrip: the default path plus -check must write an
// image, decode it back, and verify it statically — the summary reports
// the proven bound and the check line reports the re-derivation.
func TestCompileCheckRoundTrip(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "stream.bin")
	code, out, errw := runCompile(t, "-net", "tinycnn", "-h", "24", "-w", "32", "-accel", "small", "-check", "-o", outPath)
	if code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, out, errw)
	}
	for _, want := range []string{
		"check: ", "interrupt points replayed", "bound re-derived",
		"proven worst-case response", "wrote " + outPath,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	f, err := os.Open(outPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	p, err := isa.Decode(f)
	if err != nil {
		t.Fatalf("written image does not decode: %v", err)
	}
	if p.ResponseBound == 0 {
		t.Error("written image carries no response bound")
	}
}

// TestCompileBudgetedDump: -vi-budget prunes interrupt points and -dump
// emits the disassembly with starred park points.
func TestCompileBudgetedDump(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "stream.bin")
	code, every, errw := runCompile(t, "-net", "tinycnn", "-h", "24", "-w", "32", "-accel", "small", "-summary=false", "-dump", "-o", outPath)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errw)
	}
	if !strings.Contains(every, "instruction stream (* marks an interrupt point):") {
		t.Fatalf("-dump produced no disassembly:\n%.400s", every)
	}
	decode := func() *isa.Program {
		f, err := os.Open(outPath)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		p, err := isa.Decode(f)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	everyPoints := len(decode().InterruptPoints())
	if everyPoints == 0 {
		t.Fatal("every-site stream kept no interrupt points")
	}

	code, _, errw = runCompile(t, "-net", "tinycnn", "-h", "24", "-w", "32", "-accel", "small", "-summary=false", "-vi-budget", "1000000", "-check", "-o", outPath)
	if code != 0 {
		t.Fatalf("budgeted exit %d: %s", code, errw)
	}
	if got := len(decode().InterruptPoints()); got >= everyPoints {
		t.Errorf("budgeted stream kept %d points, every-site %d: no pruning", got, everyPoints)
	}
}

// TestCompileProfileAndWeights: -profile prints the per-layer table and
// -weights embeds a functional image.
func TestCompileProfileAndWeights(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "stream.bin")
	code, out, errw := runCompile(t, "-net", "tinycnn", "-h", "24", "-w", "32", "-accel", "small", "-summary=false", "-profile", "-weights", "-o", outPath)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errw)
	}
	if !strings.Contains(out, "MAC") {
		t.Errorf("-profile output missing the MAC column:\n%.400s", out)
	}
	f, err := os.Open(outPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	p, err := isa.Decode(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Weights) == 0 {
		t.Error("-weights image has no weight payload")
	}
}

// TestCompileProto: a Caffe-style prototxt compiles end to end.
func TestCompileProto(t *testing.T) {
	dir := t.TempDir()
	proto := filepath.Join(dir, "net.prototxt")
	src := `name: "mini"
input_shape { dim: 1 dim: 3 dim: 24 dim: 32 }
layer {
  name: "conv1"
  type: "Convolution"
  bottom: "data"
  top: "conv1"
  convolution_param { num_output: 8 kernel_size: 3 stride: 1 pad: 1 }
}
`
	if err := os.WriteFile(proto, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	outPath := filepath.Join(dir, "stream.bin")
	code, out, errw := runCompile(t, "-proto", proto, "-accel", "small", "-o", outPath)
	if code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, out, errw)
	}
	if !strings.Contains(out, "wrote "+outPath) {
		t.Errorf("no wrote line:\n%s", out)
	}
}

func TestCompileUsageErrors(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "stream.bin")
	if code, _, errw := runCompile(t, "-accel", "bogus", "-o", outPath); code != 1 || !strings.Contains(errw, "unknown -accel") {
		t.Errorf("bad accel: exit %d, stderr %q", code, errw)
	}
	if code, _, errw := runCompile(t, "-net", "bogus", "-o", outPath); code != 1 || errw == "" {
		t.Errorf("bad net: exit %d, stderr %q", code, errw)
	}
	if code, _, _ := runCompile(t, "-proto", filepath.Join(t.TempDir(), "missing.prototxt"), "-o", outPath); code != 1 {
		t.Errorf("missing proto: exit %d", code)
	}
	if code, _, _ := runCompile(t, "-bogus-flag"); code != 1 {
		t.Errorf("bad flag: exit %d", code)
	}
}
