// inca-compile lowers a CNN to the accelerator's instruction set and writes
// an instruction.bin image, optionally with the virtual-instruction pass
// (the INCA compilation step of Fig. 1).
//
// Usage:
//
//	inca-compile -net resnet101 -c 3 -h 480 -w 640 -accel big -vi -o instruction.bin
//	inca-compile -net superpoint -vi-budget 60000 -o instruction.bin
//
// -vi inserts a backup group at every legal site (the paper's rule);
// -vi-budget N instead keeps the minimal site set whose proven worst-case
// preemption response stays under N cycles. Either way the proven bound is
// embedded in the stream image and printed in the summary. -check decodes
// the written image back and runs the internal/progcheck static verifier
// over it, so what ships is what was proven.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"inca/internal/accel"
	"inca/internal/compiler"
	"inca/internal/iau"
	"inca/internal/isa"
	"inca/internal/model"
	"inca/internal/progcheck"
	"inca/internal/quant"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("inca-compile", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		netName  = fs.String("net", "tinycnn", "network: tinycnn|vgg16|resnet18|resnet34|resnet50|resnet101|mobilenetv1|superpoint|gem|medium")
		proto    = fs.String("proto", "", "compile a Caffe-style .prototxt file instead of -net")
		dump     = fs.Bool("dump", false, "print the disassembled instruction stream")
		profile  = fs.Bool("profile", false, "print per-layer MACs/params/arithmetic-intensity")
		inC      = fs.Int("c", 3, "input channels")
		inH      = fs.Int("h", 120, "input height")
		inW      = fs.Int("w", 160, "input width")
		accelStr = fs.String("accel", "big", "accelerator config: big (16,16,8) or small (8,8,4)")
		vi       = fs.Bool("vi", true, "run the virtual-instruction pass (interruptible stream)")
		viBudget = fs.Uint64("vi-budget", 0, "worst-case preemption-response budget in cycles: keep only the minimal Vir_SAVE site set proving it (0 = a group at every site; overrides -vi)")
		bps      = fs.Int("blobs-per-save", 2, "CalcBlobs per SAVE window (0 = one SAVE per tile)")
		weights  = fs.Bool("weights", false, "embed the synthetic weight image (functional execution)")
		seed     = fs.Uint64("seed", 1, "synthetic parameter seed")
		outPath  = fs.String("o", "instruction.bin", "output file")
		summary  = fs.Bool("summary", true, "print network and stream summaries")
		check    = fs.Bool("check", false, "decode the written image back and re-run the static verifier on it (round-trip trust check)")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}

	fail := func(format string, a ...interface{}) int {
		fmt.Fprintf(errw, "inca-compile: "+format+"\n", a...)
		return 1
	}

	cfg := accel.Big()
	if *accelStr == "small" {
		cfg = accel.Small()
	} else if *accelStr != "big" {
		return fail("unknown -accel %q (want big or small)", *accelStr)
	}

	var g *model.Network
	var err error
	if *proto != "" {
		src, rerr := os.ReadFile(*proto)
		if rerr != nil {
			return fail("reading %s: %v", *proto, rerr)
		}
		g, err = model.ParsePrototxt(string(src))
	} else {
		g, err = model.ByName(*netName, *inC, *inH, *inW)
	}
	if err != nil {
		return fail("%v", err)
	}
	q, err := quant.Synthesize(g, *seed)
	if err != nil {
		return fail("quantize: %v", err)
	}
	opt := cfg.CompilerOptions()
	opt.VI = compiler.VIIf(*vi)
	if *viBudget > 0 {
		opt.VI = compiler.VIBudget{MaxResponseCycles: *viBudget}
	}
	opt.BlobsPerSave = *bps
	opt.EmitWeights = *weights
	p, err := compiler.Compile(q, opt)
	if err != nil {
		return fail("compile: %v", err)
	}

	f, err := os.Create(*outPath)
	if err != nil {
		return fail("create %s: %v", *outPath, err)
	}
	if err := isa.Encode(f, p); err != nil {
		return fail("encode: %v", err)
	}
	if err := f.Close(); err != nil {
		return fail("close: %v", err)
	}

	if *check {
		// Verify what actually landed on disk, not the in-memory program:
		// the round trip covers the codec as well as the stream.
		rf, err := os.Open(*outPath)
		if err != nil {
			return fail("reopen %s: %v", *outPath, err)
		}
		back, err := isa.Decode(rf)
		rf.Close()
		if err != nil {
			return fail("decode-back %s: %v", *outPath, err)
		}
		rep := progcheck.Verify(back, progcheck.Options{Cost: cfg})
		if !rep.OK() {
			return fail("static verification of %s failed:\n%v", *outPath, rep.Err())
		}
		fmt.Fprintf(out, "check: %d instructions verified, %d interrupt points replayed, bound re-derived %d cycles\n",
			rep.Instrs, rep.CheckedResumes, rep.RederivedBound)
	}

	if *summary {
		fmt.Fprint(out, g.Summary())
		fmt.Fprint(out, compiler.Analyze(p))
		macs, _ := g.TotalMACs()
		fmt.Fprintf(out, "  %.2f GMAC per inference\n", float64(macs)/1e9)
		backups := 0
		for _, in := range p.Instrs {
			if in.Op == isa.OpVirSave {
				backups++
			}
		}
		fmt.Fprintf(out, "  fault tolerance: %d snapshot (Vir_SAVE) sites, watchdog bound %d cycles (%.1f us/instr)\n",
			backups, iau.WatchdogBound(cfg, p), cfg.CyclesToMicros(iau.WatchdogBound(cfg, p)))
		if p.ResponseBound > 0 {
			fmt.Fprintf(out, "  preemption: proven worst-case response %d cycles (%.1f us) under %s placement\n",
				p.ResponseBound, cfg.CyclesToMicros(p.ResponseBound), opt.VI)
		}
	}
	if *profile {
		prof, err := g.Profile()
		if err != nil {
			return fail("profile: %v", err)
		}
		fmt.Fprint(out, prof)
	}
	if *dump {
		if err := p.Disassemble(out); err != nil {
			return fail("disassemble: %v", err)
		}
	}
	st, _ := os.Stat(*outPath)
	fmt.Fprintf(out, "wrote %s (%d bytes, %d instructions, %s)\n", *outPath, st.Size(), len(p.Instrs), cfg.Name)
	return 0
}
