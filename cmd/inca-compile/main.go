// inca-compile lowers a CNN to the accelerator's instruction set and writes
// an instruction.bin image, optionally with the virtual-instruction pass
// (the INCA compilation step of Fig. 1).
//
// Usage:
//
//	inca-compile -net resnet101 -c 3 -h 480 -w 640 -accel big -vi -o instruction.bin
//	inca-compile -net superpoint -vi-budget 60000 -o instruction.bin
//
// -vi inserts a backup group at every legal site (the paper's rule);
// -vi-budget N instead keeps the minimal site set whose proven worst-case
// preemption response stays under N cycles. Either way the proven bound is
// embedded in the stream image and printed in the summary.
package main

import (
	"flag"
	"fmt"
	"os"

	"inca/internal/accel"
	"inca/internal/compiler"
	"inca/internal/iau"
	"inca/internal/isa"
	"inca/internal/model"
	"inca/internal/quant"
)

func main() {
	var (
		netName  = flag.String("net", "tinycnn", "network: tinycnn|vgg16|resnet18|resnet34|resnet50|resnet101|mobilenetv1|superpoint|gem|medium")
		proto    = flag.String("proto", "", "compile a Caffe-style .prototxt file instead of -net")
		dump     = flag.Bool("dump", false, "print the disassembled instruction stream")
		profile  = flag.Bool("profile", false, "print per-layer MACs/params/arithmetic-intensity")
		inC      = flag.Int("c", 3, "input channels")
		inH      = flag.Int("h", 120, "input height")
		inW      = flag.Int("w", 160, "input width")
		accelStr = flag.String("accel", "big", "accelerator config: big (16,16,8) or small (8,8,4)")
		vi       = flag.Bool("vi", true, "run the virtual-instruction pass (interruptible stream)")
		viBudget = flag.Uint64("vi-budget", 0, "worst-case preemption-response budget in cycles: keep only the minimal Vir_SAVE site set proving it (0 = a group at every site; overrides -vi)")
		bps      = flag.Int("blobs-per-save", 2, "CalcBlobs per SAVE window (0 = one SAVE per tile)")
		weights  = flag.Bool("weights", false, "embed the synthetic weight image (functional execution)")
		seed     = flag.Uint64("seed", 1, "synthetic parameter seed")
		out      = flag.String("o", "instruction.bin", "output file")
		summary  = flag.Bool("summary", true, "print network and stream summaries")
	)
	flag.Parse()

	cfg := accel.Big()
	if *accelStr == "small" {
		cfg = accel.Small()
	} else if *accelStr != "big" {
		fatalf("unknown -accel %q (want big or small)", *accelStr)
	}

	var g *model.Network
	var err error
	if *proto != "" {
		src, rerr := os.ReadFile(*proto)
		if rerr != nil {
			fatalf("reading %s: %v", *proto, rerr)
		}
		g, err = model.ParsePrototxt(string(src))
	} else {
		g, err = model.ByName(*netName, *inC, *inH, *inW)
	}
	if err != nil {
		fatalf("%v", err)
	}
	q, err := quant.Synthesize(g, *seed)
	if err != nil {
		fatalf("quantize: %v", err)
	}
	opt := cfg.CompilerOptions()
	opt.VI = compiler.VIIf(*vi)
	if *viBudget > 0 {
		opt.VI = compiler.VIBudget{MaxResponseCycles: *viBudget}
	}
	opt.BlobsPerSave = *bps
	opt.EmitWeights = *weights
	p, err := compiler.Compile(q, opt)
	if err != nil {
		fatalf("compile: %v", err)
	}

	f, err := os.Create(*out)
	if err != nil {
		fatalf("create %s: %v", *out, err)
	}
	if err := isa.Encode(f, p); err != nil {
		fatalf("encode: %v", err)
	}
	if err := f.Close(); err != nil {
		fatalf("close: %v", err)
	}

	if *summary {
		fmt.Print(g.Summary())
		fmt.Print(compiler.Analyze(p))
		macs, _ := g.TotalMACs()
		fmt.Printf("  %.2f GMAC per inference\n", float64(macs)/1e9)
		backups := 0
		for _, in := range p.Instrs {
			if in.Op == isa.OpVirSave {
				backups++
			}
		}
		fmt.Printf("  fault tolerance: %d snapshot (Vir_SAVE) sites, watchdog bound %d cycles (%.1f us/instr)\n",
			backups, iau.WatchdogBound(cfg, p), cfg.CyclesToMicros(iau.WatchdogBound(cfg, p)))
		if p.ResponseBound > 0 {
			fmt.Printf("  preemption: proven worst-case response %d cycles (%.1f us) under %s placement\n",
				p.ResponseBound, cfg.CyclesToMicros(p.ResponseBound), opt.VI)
		}
	}
	if *profile {
		prof, err := g.Profile()
		if err != nil {
			fatalf("profile: %v", err)
		}
		fmt.Print(prof)
	}
	if *dump {
		if err := p.Disassemble(os.Stdout); err != nil {
			fatalf("disassemble: %v", err)
		}
	}
	st, _ := os.Stat(*out)
	fmt.Printf("wrote %s (%d bytes, %d instructions, %s)\n", *out, st.Size(), len(p.Instrs), cfg.Name)
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "inca-compile: "+format+"\n", args...)
	os.Exit(1)
}
