// inca-serve is the overload-graceful serving front-end: it generates a
// seeded open-loop stream of inference requests with heavy-tailed
// priorities and drives it through a fault-tolerant EngineCluster
// (internal/cluster) — least-loaded placement, cross-engine migration of
// preempted and watchdog-killed tasks, engine quarantine with
// probe-and-readmit, and admission control that sheds the lowest-priority
// work first. It reports throughput, latency percentiles, and SLA
// attainment, and can verify every completed inference bit-exactly against
// the golden interpreter.
//
// Usage:
//
//	inca-serve -engines 4 -tasks 64
//	inca-serve -engines 4 -hang 0.05 -corrupt 0.05 -functional
//	inca-serve -engines 2 -json stats.json -trace serve.trace.json
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"inca/internal/accel"
	"inca/internal/cluster"
	"inca/internal/compiler"
	"inca/internal/iau"
	"inca/internal/trace"
)

func main() {
	var (
		engines    = flag.Int("engines", 4, "cluster size")
		tasks      = flag.Int("tasks", 64, "requests in the arrival stream")
		seed       = flag.Uint64("seed", 1, "master seed (workload and fault streams)")
		hang       = flag.Float64("hang", 0, "per-attempt probability an inference hangs (watchdog kill)")
		stall      = flag.Float64("stall", 0, "per-instruction transient stall probability")
		corrupt    = flag.Float64("corrupt", 0, "per-preemption DDR backup corruption probability")
		meanGap    = flag.Uint64("mean-gap", 0, "mean inter-arrival gap in cycles (0 = moderate overload)")
		dlFactor   = flag.Float64("deadline-factor", 16, "deadline = factor x solo runtime for priority 0/1 tasks (0 = none)")
		quarantine = flag.Int("quarantine-k", cluster.DefaultQuarantineAfter, "consecutive kills before an engine is quarantined")
		maxMig     = flag.Int("max-migrations", cluster.DefaultMaxMigrations, "placements per task before it is shed")
		maxQueue   = flag.Int("max-queue", cluster.DefaultMaxQueue, "dispatch backlog bound (admission control)")
		functional = flag.Bool("functional", false, "run with real arenas and verify completions against the golden interpreter")
		viBudgetUs = flag.Float64("vi-budget-us", 0, "compile served models with the minimal interrupt-point set proving this worst-case preemption response in microseconds (0 = a backup group at every site)")
		dlCheck    = flag.Bool("deadline-check", false, "reject tasks at admission whose deadline cannot survive solo runtime plus the worst proven response bound in the mix")
		jsonOut    = flag.String("json", "", "write the deterministic stats report to this file")
		traceOut   = flag.String("trace", "", "write the cluster-level Perfetto trace (migrate/quarantine/readmit marks) here")
		outcomes   = flag.Bool("outcomes", false, "print one line per task outcome")
	)
	flag.Parse()

	cfg := accel.Big()
	cfg.ParaIn, cfg.ParaOut, cfg.ParaHeight = 8, 8, 4

	var vi compiler.VIPolicy
	if *viBudgetUs > 0 {
		vi = compiler.VIBudget{MaxResponseCycles: cfg.SecondsToCycles(*viBudgetUs * 1e-6)}
	}
	w, err := cluster.NewWorkload(cfg, cluster.WorkloadConfig{
		Tasks: *tasks, Seed: *seed, MeanGapCycles: *meanGap,
		Functional: *functional, DeadlineFactor: *dlFactor, VI: vi,
	})
	if err != nil {
		fatalf("workload: %v", err)
	}

	var tr *trace.Tracer
	if *traceOut != "" {
		tr = trace.New(1 << 16)
	}
	res, err := cluster.Run(cluster.Config{
		Engines: *engines, Accel: cfg, Policy: iau.PolicyVI,
		Seed:            *seed,
		HangRate:        cluster.HangRatePerAttempt(w.Progs, *hang),
		StallRate:       *stall,
		BackupRate:      *corrupt,
		QuarantineAfter: *quarantine,
		MaxMigrations:   *maxMig,
		MaxQueue:        *maxQueue,
		DeadlineCheck:   *dlCheck,
		Tracer:          tr,
	}, w.Tasks)
	if err != nil {
		fatalf("cluster: %v", err)
	}

	fmt.Print(res.Stats.String())
	cps := float64(cfg.FreqMHz) * 1e6
	fmt.Printf("goodput: %.1f inferences/s at %d MHz\n", res.Stats.Goodput(cps), cfg.FreqMHz)

	if *outcomes {
		for i := range res.Outcomes {
			o := &res.Outcomes[i]
			switch {
			case o.Completed:
				fmt.Printf("  task %-3d %-16s done @%d on engine%d (latency %d, %d migrations, %d salvages)\n",
					o.TaskID, o.Name, o.DoneCycle, o.Engine, o.Latency, o.Migrations, o.Salvaged)
			default:
				fmt.Printf("  task %-3d %-16s shed (%s) @%d after %d attempts\n",
					o.TaskID, o.Name, o.Shed, o.DoneCycle, o.Attempts)
			}
		}
	}

	if *functional {
		bad := 0
		for i := range res.Outcomes {
			o := &res.Outcomes[i]
			if o.Completed && !bytes.Equal(w.Tasks[o.TaskID].Arena, w.Golden[o.TaskID]) {
				fmt.Fprintf(os.Stderr, "inca-serve: task %d (%s) output differs from golden\n", o.TaskID, o.Name)
				bad++
			}
		}
		if bad > 0 {
			fatalf("%d of %d completed inferences diverged from the golden interpreter", bad, res.Stats.Completed)
		}
		fmt.Printf("functional: %d completed inferences bit-exact vs golden\n", res.Stats.Completed)
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fatalf("create %s: %v", *jsonOut, err)
		}
		if err := res.Stats.WriteJSON(f); err != nil {
			fatalf("write %s: %v", *jsonOut, err)
		}
		f.Close()
		fmt.Printf("wrote %s\n", *jsonOut)
	}
	if *traceOut != "" {
		if err := trace.WriteFiles(tr, *traceOut, "inca-serve"); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("wrote %s (%d events, %d dropped) and %s\n",
			*traceOut, len(tr.Events()), tr.Dropped(), trace.MetricsPath(*traceOut))
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "inca-serve: "+format+"\n", args...)
	os.Exit(1)
}
