// Package inca reproduces "INCA: INterruptible CNN Accelerator for
// Multi-tasking in Embedded Robots" (DAC 2020) as a pure-Go simulation
// stack: an instruction-driven CNN accelerator with a calibrated cycle
// model and a bit-exact functional datapath, the virtual-instruction
// compiler pass, the Instruction Arrangement Unit (IAU) with four priority
// slots, the CPU-like and layer-by-layer baselines, a deterministic
// ROS-like middleware, and the two-agent CNN-based DSLAM evaluation system.
//
// See README.md for usage, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the paper-vs-measured record. The root package exists
// to host the repository-level benchmarks (bench_test.go); the
// implementation lives under internal/.
package inca
