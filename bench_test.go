package inca_test

import (
	"fmt"
	"testing"
	"time"

	"inca/internal/accel"
	"inca/internal/bench"
	"inca/internal/compiler"
	"inca/internal/iau"
	"inca/internal/interrupt"
	"inca/internal/isa"
	"inca/internal/model"
	"inca/internal/quant"
	"inca/internal/sched"
	"inca/internal/slam"
	"inca/internal/tensor"
)

// Repository-level benchmarks: one per paper table/figure (E1..E7), the
// ablation and extension studies (E8, E9), and micro-benchmarks of the
// simulation primitives. Each experiment benchmark runs the same code path
// as `inca-bench` at quick scale and reports its headline number as a
// custom metric; run `inca-bench -scale full` for the paper-scale tables.

// BenchmarkE1_InterruptPositions — Fig. 5(a): response latency & cost at 12
// sampled positions of ResNet-101 under the three interrupt methods.
func BenchmarkE1_InterruptPositions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.E1InterruptPositions(bench.Quick)
		if err != nil {
			b.Fatal(err)
		}
		var vi, lbl float64
		for j := range r.Measurements[iau.PolicyVI] {
			vi += float64(r.Measurements[iau.PolicyVI][j].LatencyCycles)
			lbl += float64(r.Measurements[iau.PolicyLayerByLayer][j].LatencyCycles)
		}
		b.ReportMetric(100*vi/lbl, "VI/layer-latency-%")
	}
}

// BenchmarkE2_NetworkSweep — Fig. 5(b): per-layer latency across ResNet-101,
// VGG-16, MobileNetV1 on both accelerator configurations.
func BenchmarkE2_NetworkSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.E2NetworkSweep(bench.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3_BackupVsConv — the backup(t2) vs calculation(t1) table.
func BenchmarkE3_BackupVsConv(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.E3BackupVsConv(bench.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE4_TheoryCheck — Eq. (1) worked example (R_l ≈ 1.7%).
func BenchmarkE4_TheoryCheck(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.E4TheoryCheck(bench.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5_Resources — the hardware consumption table.
func BenchmarkE5_Resources(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.E5Resources(bench.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE6_DSLAM — §5.3 scheduling: FE @20 fps + continuous PR on one
// accelerator across the three policies.
func BenchmarkE6_DSLAM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.E6DSLAMScheduling(bench.Quick)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.Results[iau.PolicyVI].Degradation(), "degradation-%")
	}
}

// BenchmarkE7_Headline — the abstract's two headline claims.
func BenchmarkE7_Headline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.E7Headline(bench.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE8_SaveGranularity — ablation of CalcBlobs per SAVE window.
func BenchmarkE8_SaveGranularity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.E8SaveGranularity(bench.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9_MultiCore — the paper's future work: multiple accelerators
// behind a least-loaded dispatcher.
func BenchmarkE9_MultiCore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.E9MultiCore(bench.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE10_Sensitivity — DDR bandwidth x prefetch depth sweep.
func BenchmarkE10_Sensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.E10Sensitivity(bench.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE11_Schedulability — response-time analysis of the DSLAM set.
func BenchmarkE11_Schedulability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.E11Schedulability(bench.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE12_Energy — energy of interrupt support.
func BenchmarkE12_Energy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.E12Energy(bench.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE13_Migration — cross-core migration of preempted tasks.
func BenchmarkE13_Migration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.E13Migration(bench.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks of the simulation primitives ------------------------

// BenchmarkCompileResNet101 measures compiling the PR backbone (quick scale)
// to VI-ISA.
func BenchmarkCompileResNet101(b *testing.B) {
	g, err := model.NewResNet(101, 3, 120, 160)
	if err != nil {
		b.Fatal(err)
	}
	q, err := quant.Synthesize(g, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := accel.Big()
	opt := cfg.CompilerOptions()
	opt.VI = compiler.VIEvery{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := compiler.Compile(q, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTimingSimulation measures raw instruction-stream simulation
// throughput (instructions per second of one ResNet-101 inference).
func BenchmarkTimingSimulation(b *testing.B) {
	cfg := accel.Big()
	g, err := model.NewResNet(101, 3, 120, 160)
	if err != nil {
		b.Fatal(err)
	}
	q, err := quant.Synthesize(g, 1)
	if err != nil {
		b.Fatal(err)
	}
	opt := cfg.CompilerOptions()
	opt.VI = compiler.VIEvery{}
	p, err := compiler.Compile(q, opt)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := interrupt.SoloCycles(cfg, p); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(p.Instrs))*float64(b.N)/b.Elapsed().Seconds(), "instrs/s")
}

// BenchmarkFunctionalInference measures the bit-exact functional datapath on
// a small network, end to end through the IAU, at several worker counts.
// (Per-kernel datapath numbers live in internal/accel's BenchmarkEngineConv.)
func BenchmarkFunctionalInference(b *testing.B) {
	cfg := accel.Big()
	cfg.ParaIn, cfg.ParaOut, cfg.ParaHeight = 4, 4, 3
	g := model.NewResNetTiny()
	q, err := quant.Synthesize(g, 1)
	if err != nil {
		b.Fatal(err)
	}
	opt := cfg.CompilerOptions()
	opt.VI = compiler.VIEvery{}
	opt.EmitWeights = true
	p, err := compiler.Compile(q, opt)
	if err != nil {
		b.Fatal(err)
	}
	var macs float64
	for i := range p.Layers {
		l := &p.Layers[i]
		if l.Op != isa.LayerConv {
			continue
		}
		icg := l.InC
		if l.Groups == l.InC && l.Groups > 1 {
			icg = 1
		}
		fp := l.FusedPool
		if fp < 1 {
			fp = 1
		}
		macs += float64(l.OutC*l.OutH*fp*l.OutW*fp) * float64(l.KH*l.KW*icg)
	}
	input := tensor.NewInt8(g.InC, g.InH, g.InW)
	tensor.FillPattern(input, 5)
	for _, workers := range []int{1, 2} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			wcfg := cfg
			wcfg.Workers = workers
			for i := 0; i < b.N; i++ {
				arena, err := accel.NewArena(p)
				if err != nil {
					b.Fatal(err)
				}
				if err := accel.WriteInput(arena, p, input); err != nil {
					b.Fatal(err)
				}
				u := iau.New(wcfg, iau.PolicyNone)
				if err := u.Submit(1, &iau.Request{Label: "f", Prog: p, Arena: arena}); err != nil {
					b.Fatal(err)
				}
				if err := u.RunAll(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(macs*float64(b.N)/b.Elapsed().Seconds(), "MACs/s")
		})
	}
}

// BenchmarkPreemptionRoundTrip measures one full preempt/resume cycle
// (boundary search + backup + switch + restore) on the VI policy.
func BenchmarkPreemptionRoundTrip(b *testing.B) {
	cfg := accel.Big()
	g := model.NewVGG16(3, 60, 80)
	q, err := quant.Synthesize(g, 1)
	if err != nil {
		b.Fatal(err)
	}
	opt := cfg.CompilerOptions()
	opt.VI = compiler.VIEvery{}
	victim, err := compiler.Compile(q, opt)
	if err != nil {
		b.Fatal(err)
	}
	probe, err := interrupt.TinyPreemptor(cfg)
	if err != nil {
		b.Fatal(err)
	}
	total, err := interrupt.SoloCycles(cfg, victim)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := interrupt.MeasureAt(cfg, iau.PolicyVI, victim, probe, total/2)
		if err != nil {
			b.Fatal(err)
		}
		if !m.Preempted {
			b.Fatal("no preemption")
		}
	}
}

// BenchmarkScheduler measures the scheduling runtime on the DSLAM mix.
func BenchmarkScheduler(b *testing.B) {
	cfg := accel.Big()
	g := model.NewSuperPoint(90, 120)
	q, err := quant.Synthesize(g, 1)
	if err != nil {
		b.Fatal(err)
	}
	fe, err := compiler.Compile(q, cfg.CompilerOptions())
	if err != nil {
		b.Fatal(err)
	}
	gem, err := model.NewGeM(3, 120, 160)
	if err != nil {
		b.Fatal(err)
	}
	qg, err := quant.Synthesize(gem, 2)
	if err != nil {
		b.Fatal(err)
	}
	opt := cfg.CompilerOptions()
	opt.VI = compiler.VIEvery{}
	pr, err := compiler.Compile(qg, opt)
	if err != nil {
		b.Fatal(err)
	}
	specs := []sched.TaskSpec{
		{Name: "FE", Slot: 0, Prog: fe, Period: 50 * time.Millisecond, Deadline: 50 * time.Millisecond},
		{Name: "PR", Slot: 1, Prog: pr, Continuous: true},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.Run(cfg, iau.PolicyVI, specs, time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDSLAMCoSim measures the full two-agent co-simulation per
// simulated second.
func BenchmarkDSLAMCoSim(b *testing.B) {
	cfg := slam.DefaultDSLAMConfig()
	cfg.Duration = 2 * time.Second
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := slam.RunDSLAM(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
